// Gray-failure detection unit/integration tests (ctest label "gray"):
// HealthMonitor's signal scoring and Up -> Suspect -> Probation state
// machine, the MembershipManager health overlay (Suspect nodes stay Up but
// stop being chosen), the ReliableLink suspect_after escalation into the
// FailureLedger, and the adaptive-RTO estimator (always maintained, only
// steering the schedule when the knob is on).

#include <gtest/gtest.h>

#include <string>

#include "chaos/chaos.hpp"
#include "chaos/workload.hpp"
#include "core/health.hpp"
#include "core/membership.hpp"
#include "core/runtime.hpp"
#include "simnet/reliable.hpp"
#include "storage/degraded_store.hpp"

namespace mrts::core {
namespace {

// --- HealthMonitor detection -------------------------------------------------

TEST(HealthMonitor, SlowDiskNodeIsSuspectedAndOthersAreNot) {
  // Node 2's spill device charges 32x the baseline on every op, forever.
  // Relative scoring must flag node 2 (its per-op EWMA exceeds 4x the
  // cluster median) and leave the healthy nodes alone.
  ClusterOptions options;
  options.nodes = 4;
  options.runtime.ooc.memory_budget_bytes = 16u << 10;
  options.runtime.reliable_net.enabled = true;
  options.spill = SpillMedium::kMemory;
  options.degraded_storage.assign(4, storage::DegradedPlan{.base_op_us = 50});
  options.degraded_storage[2].windows.push_back(
      storage::DegradedWindow{.inflation = 32});

  HealthMonitor monitor({.sample_interval = 2});
  monitor.instrument(options);
  Cluster cluster(options);
  monitor.attach(cluster);

  chaos::HopWorkloadOptions wl;
  wl.objects_per_node = 4;
  wl.payload_words = 512;  // 4KB payloads against a 16KB budget: spills
  wl.routes = 16;
  wl.route_length = 6;
  wl.seed = 11;
  chaos::HopWorkload workload(cluster, wl);
  workload.create_objects();
  workload.inject();
  const auto report = cluster.run();
  ASSERT_FALSE(report.timed_out);
  EXPECT_EQ(workload.executed_hops(), workload.expected_hops());

  ASSERT_GT(monitor.stats().samples, 0u);
  const NodeHealth& sick = monitor.node_health(2);
  EXPECT_GE(sick.suspect_events, 1u)
      << "per-op EWMA " << sick.storage_ewma_us_per_op;
  EXPECT_GT(sick.storage_ewma_us_per_op,
            4 * monitor.node_health(0).storage_ewma_us_per_op);
  for (NodeId id : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    EXPECT_EQ(monitor.node_health(id).suspect_events, 0u) << "node " << id;
    EXPECT_EQ(monitor.state(id), HealthState::kHealthy) << "node " << id;
  }
  // The window never ends, so node 2 is still Suspect — serving (node_up
  // in the standalone view is unconditionally true) but not chosen.
  EXPECT_EQ(monitor.state(2), HealthState::kSuspect);
  EXPECT_TRUE(monitor.node_up(2));
  EXPECT_FALSE(monitor.node_healthy(2));
  EXPECT_FALSE(monitor.node_accepting(2));
  EXPECT_NE(monitor.fallback_node(2), 2);
}

TEST(HealthMonitor, BoundedDegradationRecoversToHealthy) {
  // The slow-disk window covers only the node's first 24 device ops; after
  // it ends the node's per-op cost returns to baseline and the state
  // machine must walk Suspect -> Probation -> Healthy before the run ends.
  // Sampling every sweep gives the streaks room inside a short run.
  ClusterOptions options;
  options.nodes = 4;
  options.runtime.ooc.memory_budget_bytes = 16u << 10;
  options.runtime.reliable_net.enabled = true;
  options.spill = SpillMedium::kMemory;
  options.degraded_storage.assign(4, storage::DegradedPlan{.base_op_us = 50});
  options.degraded_storage[1].windows.push_back(
      storage::DegradedWindow{.begin_op = 0, .end_op = 24, .inflation = 32});

  HealthMonitor monitor({.sample_interval = 1});
  monitor.instrument(options);
  Cluster cluster(options);
  monitor.attach(cluster);

  chaos::HopWorkloadOptions wl;
  wl.objects_per_node = 4;
  wl.payload_words = 512;
  wl.routes = 24;  // long enough tail of healthy samples to recover in
  wl.route_length = 8;
  wl.seed = 7;
  chaos::HopWorkload workload(cluster, wl);
  workload.create_objects();
  workload.inject();
  ASSERT_FALSE(cluster.run().timed_out);

  const NodeHealth& h = monitor.node_health(1);
  EXPECT_GE(h.suspect_events, 1u);
  EXPECT_GE(h.recoveries, 1u) << "state " << to_string(h.state);
  EXPECT_EQ(monitor.state(1), HealthState::kHealthy);
  EXPECT_EQ(monitor.stats().recoveries, h.recoveries);
}

// --- MembershipManager health overlay ---------------------------------------

struct FakeHealth final : HealthView {
  std::vector<bool> sick;
  [[nodiscard]] bool node_healthy(NodeId n) const override {
    return n >= sick.size() || !sick[n];
  }
};

TEST(MembershipHealthOverlay, SuspectNodeStaysUpButStopsBeingChosen) {
  MembershipManager mgr({});
  ClusterOptions options;
  options.nodes = 3;
  mgr.instrument(options);
  Cluster cluster(options);
  mgr.attach(cluster);

  FakeHealth fake;
  fake.sick = {false, true, false};
  mgr.set_health_view(&fake);

  EXPECT_TRUE(mgr.node_up(1));           // it keeps serving...
  EXPECT_FALSE(mgr.node_accepting(1));   // ...but offers no capacity
  EXPECT_EQ(mgr.state(1), MembershipState::kUp);
  EXPECT_EQ(mgr.fallback_node(0), 2);    // reroutes skip the suspect

  // All-Suspect degrades gracefully: a slow Up node beats a dead one.
  fake.sick = {false, true, true};
  EXPECT_EQ(mgr.fallback_node(0), 1);

  // Recovery (or detaching the overlay) restores the node immediately.
  fake.sick = {false, false, true};
  EXPECT_TRUE(mgr.node_accepting(1));
  EXPECT_EQ(mgr.fallback_node(0), 1);
  mgr.set_health_view(nullptr);
  EXPECT_TRUE(mgr.node_accepting(2));
}

// --- ReliableLink suspect_after escalation ----------------------------------

struct EscalationOutcome {
  std::uint64_t peer_suspects = 0;
  std::uint64_t network_records = 0;
  std::string first_detail;
  bool timed_out = false;
};

EscalationOutcome run_escalation(int suspect_after) {
  chaos::ChaosPlan plan;
  plan.seed = 3;
  // Every DATA frame is dropped during the window: the victims' frames
  // retransmit on the backoff schedule until the window lifts.
  plan.net.drop_handler = kAmReliableData;
  plan.net.drop_handler_windows = {{.begin_step = 2, .end_step = 60}};
  chaos::Harness harness(plan);

  ClusterOptions options;
  options.nodes = 4;
  options.runtime.ooc.memory_budget_bytes = 256u << 10;
  options.runtime.reliable_net.enabled = true;
  // Tight backoff (2-tick base) so a frame crosses several retransmits
  // well inside the drop window.
  options.runtime.reliable_net.retransmit.base_delay =
      std::chrono::microseconds(200);
  options.runtime.reliable_net.suspect_after = suspect_after;
  options.spill = SpillMedium::kMemory;
  options.max_run_time = std::chrono::seconds(120);
  harness.instrument(options);
  Cluster cluster(options);

  chaos::HopWorkloadOptions wl;
  wl.objects_per_node = 4;
  wl.payload_words = 256;
  wl.routes = 16;
  wl.route_length = 6;
  wl.seed = 3;
  chaos::HopWorkload workload(cluster, wl);
  workload.create_objects();
  workload.inject();

  EscalationOutcome out;
  out.timed_out = cluster.run().timed_out;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto& rt = cluster.node(static_cast<net::NodeId>(i));
    if (rt.reliable_link() != nullptr) {
      out.peer_suspects += rt.reliable_link()->peer_suspects();
    }
    for (const auto& rec : rt.failure_ledger().snapshot()) {
      if (rec.op != FailureOp::kNetwork) continue;
      EXPECT_EQ(rec.resolution, FailureResolution::kRetried);
      if (out.network_records == 0) out.first_detail = rec.detail;
      ++out.network_records;
    }
  }
  return out;
}

TEST(ReliableSuspectEscalation, ThresholdCrossingsLandInTheFailureLedger) {
  const EscalationOutcome hit = run_escalation(/*suspect_after=*/3);
  ASSERT_FALSE(hit.timed_out);
  EXPECT_GE(hit.peer_suspects, 1u);
  ASSERT_GE(hit.network_records, 1u);
  // Pins the threshold: escalation fires exactly when a frame's consecutive
  // retransmit count reaches suspect_after, and reports that count.
  EXPECT_NE(hit.first_detail.find("retransmitted 3 times"), std::string::npos)
      << hit.first_detail;

  // Same fault schedule with escalation disabled: nothing may be reported.
  const EscalationOutcome off = run_escalation(/*suspect_after=*/0);
  ASSERT_FALSE(off.timed_out);
  EXPECT_EQ(off.peer_suspects, 0u);
  EXPECT_EQ(off.network_records, 0u);
}

// --- Adaptive RTO ------------------------------------------------------------

struct RtoOutcome {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t expected = 0;
  std::uint64_t rtt_samples = 0;
  std::uint64_t srtt_max = 0;
  std::uint64_t retransmits = 0;
  bool timed_out = false;
};

RtoOutcome run_rto(bool faults, bool adaptive) {
  chaos::ChaosPlan plan;
  plan.seed = 9;
  if (faults) {
    plan.net.delay_rate = 0.25;
    plan.net.max_delay_steps = 8;
  }
  chaos::Harness harness(plan);
  ClusterOptions options;
  options.nodes = 4;
  options.runtime.ooc.memory_budget_bytes = 256u << 10;
  options.runtime.reliable_net.enabled = true;
  options.runtime.reliable_net.adaptive_rto = adaptive;
  options.spill = SpillMedium::kMemory;
  options.max_run_time = std::chrono::seconds(120);
  harness.instrument(options);
  Cluster cluster(options);
  chaos::HopWorkloadOptions wl;
  wl.objects_per_node = 4;
  wl.payload_words = 256;
  wl.routes = 16;
  wl.route_length = 6;
  wl.seed = 9;
  chaos::HopWorkload workload(cluster, wl);
  workload.create_objects();
  workload.inject();
  RtoOutcome out;
  out.timed_out = cluster.run().timed_out;
  out.executed = workload.executed_hops();
  out.expected = workload.expected_hops();
  out.digest = workload.state_digest();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto* link =
        cluster.node(static_cast<net::NodeId>(i)).reliable_link();
    if (link == nullptr) continue;
    out.retransmits += link->retransmits();
    for (const auto& f : link->tx_flows()) {
      out.rtt_samples += f.rtt_samples;
      out.srtt_max = std::max(out.srtt_max, f.srtt_ticks);
    }
  }
  return out;
}

TEST(AdaptiveRto, EstimatorIsMaintainedEvenWithTheKnobOff) {
  // The Jacobson/Karels state is a health signal first and a schedule
  // second: a fault-free run with adaptive_rto off must still populate it.
  const RtoOutcome clean = run_rto(/*faults=*/false, /*adaptive=*/false);
  ASSERT_FALSE(clean.timed_out);
  EXPECT_EQ(clean.retransmits, 0u);
  EXPECT_GT(clean.rtt_samples, 0u);
  EXPECT_GE(clean.srtt_max, 1u);
}

TEST(AdaptiveRto, DelayHeavyRunYieldsByteIdenticalResults) {
  // Adaptive deadlines change the retransmit schedule, never the outcome:
  // under a delay-heavy plan the digest must match the fault-free twin.
  const RtoOutcome clean = run_rto(/*faults=*/false, /*adaptive=*/false);
  ASSERT_FALSE(clean.timed_out);
  const RtoOutcome adaptive = run_rto(/*faults=*/true, /*adaptive=*/true);
  ASSERT_FALSE(adaptive.timed_out);
  EXPECT_EQ(adaptive.executed, adaptive.expected);
  EXPECT_EQ(adaptive.digest, clean.digest);
  EXPECT_GT(adaptive.rtt_samples, 0u);
}

}  // namespace
}  // namespace mrts::core
