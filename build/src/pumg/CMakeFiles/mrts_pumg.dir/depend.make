# Empty dependencies file for mrts_pumg.
# This may be replaced when dependencies are built.
