// MeshingService under an oversubscribed open-loop tenant mix: four tenants
// (one double-weighted) offer a Poisson stream of mixed UPDR/NUPDR/PCDM
// jobs whose working sets total well past 2x the cluster's committable
// memory. The service must keep every node inside its physical budget by
// admission control alone — queueing, fair-share partitioning, and
// preemption instead of OOM — while no tenant starves.
//
// Gates (exit 1 on violation, so CI can fail the job):
//   - p99 admission-to-first-refinement latency within kP99GateTicks;
//   - zero sheds and every submitted job completed (adequate queues);
//   - spot-checked jobs end digest-equal to uninterrupted solo twins, so
//     preempted-then-resumed work is provably not corrupted.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "jobsim/jobsim.hpp"
#include "service/meshing_service.hpp"

using namespace mrts;
using namespace mrts::bench;

namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kNodeBudget = 96u << 10;
constexpr std::uint64_t kP99GateTicks = 48;

std::uint64_t quantile(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(rank, v.size() - 1)];
}

/// Uninterrupted solo twin: the same spec on an idle, amply provisioned
/// cluster. Phase mutations are placement- and schedule-free, so the busy
/// run's digest must match even if the job was preempted and resumed.
std::uint64_t solo_twin_digest(jobsim::ServiceJob job) {
  core::ClusterOptions co;
  co.nodes = kNodes;
  co.runtime.ooc.memory_budget_bytes = 1u << 20;
  co.spill = core::SpillMedium::kMemory;
  core::Cluster cluster(co);
  service::ServiceOptions so;
  so.tenants = 4;
  so.preempt_enabled = false;
  service::MeshingService svc(cluster, so);
  job.arrival_tick = 0;
  svc.submit(job);
  while (svc.tick()) {
  }
  return svc.job_digest(job.id);
}

}  // namespace

int main() {
  BenchReport report(
      "service",
      "MeshingService — multi-tenant admission, fair share, and preemption "
      "at >=2x memory oversubscription (4 nodes)",
      "an out-of-core runtime lets a shared cluster admit far more meshing "
      "work than fits in memory: jobs queue briefly instead of failing, "
      "and no tenant is starved while memory stays inside budget");

  jobsim::OpenLoopConfig cfg;
  cfg.horizon_ticks = 32;
  cfg.arrivals_per_tick = 2.0;
  cfg.tenants = 4;
  cfg.max_width = static_cast<int>(kNodes);
  cfg.min_working_set_bytes = 16u << 10;
  cfg.max_working_set_bytes = 48u << 10;
  cfg.seed = 20110516;
  auto jobs = jobsim::make_open_loop_jobs(cfg);
  const double oversub =
      jobsim::offered_oversubscription(jobs, kNodes * kNodeBudget);

  core::ClusterOptions co;
  co.nodes = kNodes;
  co.runtime.ooc.memory_budget_bytes = kNodeBudget;
  co.spill = core::SpillMedium::kMemory;
  core::Cluster cluster(co);

  service::ServiceOptions so;
  so.tenants = 4;
  so.tenant_weights = {2.0, 1.0, 1.0, 1.0};
  so.max_queue_per_tenant = 0;  // rely on admission, never queue-shed
  service::MeshingService svc(cluster, so);

  const std::vector<jobsim::ServiceJob> jobs_copy = jobs;
  svc.run_open_loop(std::move(jobs));

  Table tenants({"tenant", "weight", "submitted", "completed", "preempted",
                 "shed", "phases run", "peak committed KiB", "share KiB"});
  for (const auto& w : svc.tenant_windows()) {
    tenants.row(w.tenant, w.weight, w.submitted, w.completed, w.preempted,
                w.shed, w.phases_executed,
                static_cast<double>(w.peak_admitted_bytes) / 1024.0,
                static_cast<double>(w.share_bytes) / 1024.0);
  }
  report.add("per_tenant", std::move(tenants));

  const auto& lat = svc.admission_latencies();
  const std::uint64_t p50 = quantile(lat, 0.50);
  const std::uint64_t p90 = quantile(lat, 0.90);
  const std::uint64_t p99 = quantile(lat, 0.99);
  Table latency({"admitted jobs", "p50 ticks", "p90 ticks", "p99 ticks",
                 "max ticks", "p99 gate"});
  latency.row(lat.size(), p50, p90, p99,
              lat.empty() ? 0 : *std::max_element(lat.begin(), lat.end()),
              kP99GateTicks);
  report.add("admission_latency", std::move(latency));

  Table run({"nodes", "offered oversubscription", "ticks to drain",
             "completed", "preemptions", "sheds"});
  run.row(kNodes, oversub, svc.current_tick(), svc.completed_count(),
          svc.preempted_count(), svc.shed_count());
  report.add("run_summary", std::move(run));

  report.set_meta("oversubscription", util::format("{:.2f}", oversub));
  report.set_meta("p99_admission_ticks", util::format("{}", p99));
  report.set_meta("p99_gate_ticks", util::format("{}", kP99GateTicks));
  report.set_meta("preemptions", util::format("{}", svc.preempted_count()));

  // Twin-digest spot check: one completed job per tenant against its
  // uninterrupted solo twin.
  int twin_checked = 0, twin_failures = 0;
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (const auto& j : jobs_copy) {
      if (j.tenant != t || svc.job_digest(j.id) == 0) continue;
      ++twin_checked;
      if (svc.job_digest(j.id) != solo_twin_digest(j)) {
        ++twin_failures;
        std::printf("FAIL: job %llu (tenant %u) digest differs from its "
                    "uninterrupted twin\n",
                    static_cast<unsigned long long>(j.id), t);
      }
      break;
    }
  }
  report.set_meta("twin_digest_checked", util::format("{}", twin_checked));
  report.set_meta("twin_digest_failures", util::format("{}", twin_failures));

  int failures = twin_failures;
  if (oversub < 2.0) {
    std::printf("FAIL: offered oversubscription %.2f < 2.0 — the bench is "
                "not exercising admission control\n",
                oversub);
    ++failures;
  }
  if (svc.stalled() || !svc.drained()) {
    std::printf("FAIL: service stalled before draining\n");
    ++failures;
  }
  if (svc.shed_count() != 0 || svc.completed_count() != svc.submitted_count()) {
    std::printf("FAIL: %llu shed, %llu/%llu completed — work was dropped "
                "under pressure\n",
                static_cast<unsigned long long>(svc.shed_count()),
                static_cast<unsigned long long>(svc.completed_count()),
                static_cast<unsigned long long>(svc.submitted_count()));
    ++failures;
  }
  if (p99 > kP99GateTicks) {
    std::printf("FAIL: p99 admission latency %llu ticks exceeds gate %llu\n",
                static_cast<unsigned long long>(p99),
                static_cast<unsigned long long>(kP99GateTicks));
    ++failures;
  }
  std::printf("p99 admission latency: %llu ticks (gate %llu), "
              "oversubscription %.2fx, %llu preemption(s)\n",
              static_cast<unsigned long long>(p99),
              static_cast<unsigned long long>(kP99GateTicks), oversub,
              static_cast<unsigned long long>(svc.preempted_count()));
  report.write_json();
  return failures == 0 ? 0 : 1;
}
