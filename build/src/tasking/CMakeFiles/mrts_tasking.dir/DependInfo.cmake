
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tasking/central_queue_pool.cpp" "src/tasking/CMakeFiles/mrts_tasking.dir/central_queue_pool.cpp.o" "gcc" "src/tasking/CMakeFiles/mrts_tasking.dir/central_queue_pool.cpp.o.d"
  "/root/repo/src/tasking/task_pool.cpp" "src/tasking/CMakeFiles/mrts_tasking.dir/task_pool.cpp.o" "gcc" "src/tasking/CMakeFiles/mrts_tasking.dir/task_pool.cpp.o.d"
  "/root/repo/src/tasking/work_stealing_pool.cpp" "src/tasking/CMakeFiles/mrts_tasking.dir/work_stealing_pool.cpp.o" "gcc" "src/tasking/CMakeFiles/mrts_tasking.dir/work_stealing_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mrts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
