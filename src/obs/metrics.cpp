#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace mrts::obs {

std::uint64_t HistogramMetric::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      // Upper bound of bucket i: samples with bit_width i are < 2^i.
      return i == 0 ? 0 : (i >= 64 ? ~0ull : (std::uint64_t{1} << i) - 1);
    }
  }
  return ~0ull;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  out.entries.reserve(entries.size());
  for (const Entry& e : entries) {
    Entry d = e;
    if (const Entry* b = base.find(e.name);
        b != nullptr && b->kind == e.kind && e.kind != MetricKind::kGauge) {
      d.value = std::max(0.0, e.value - b->value);
      d.sum = std::max(0.0, e.sum - b->sum);
    }
    out.entries.push_back(std::move(d));
  }
  return out;
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Instrument& MetricsRegistry::get(const std::string& name,
                                                  MetricKind kind) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = instruments_.try_emplace(name);
  Instrument& ins = it->second;
  if (inserted) {
    ins.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        ins.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        ins.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        ins.histogram = std::make_unique<HistogramMetric>();
        break;
    }
  } else if (ins.kind != kind) {
    throw std::logic_error("metric '" + name + "' registered as " +
                           to_string(ins.kind) + ", requested as " +
                           to_string(kind));
  }
  return ins;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *get(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *get(name, MetricKind::kGauge).gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name) {
  return *get(name, MetricKind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.entries.reserve(instruments_.size());
  for (const auto& [name, ins] : instruments_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = ins.kind;
    switch (ins.kind) {
      case MetricKind::kCounter:
        e.value = static_cast<double>(ins.counter->value());
        break;
      case MetricKind::kGauge:
        e.value = ins.gauge->value();
        break;
      case MetricKind::kHistogram:
        e.value = static_cast<double>(ins.histogram->count());
        e.sum = static_cast<double>(ins.histogram->sum());
        e.p50 = static_cast<double>(ins.histogram->quantile(0.50));
        e.p99 = static_cast<double>(ins.histogram->quantile(0.99));
        break;
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, ins] : instruments_) {
    switch (ins.kind) {
      case MetricKind::kCounter: ins.counter->reset(); break;
      case MetricKind::kGauge: ins.gauge->reset(); break;
      case MetricKind::kHistogram: ins.histogram->reset(); break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return instruments_.size();
}

}  // namespace mrts::obs
