# Empty compiler generated dependencies file for mrts_storage.
# This may be replaced when dependencies are built.
