#pragma once

// Streaming statistics and fixed-bin histograms used by the benchmark
// harnesses and by the job-scheduler simulator's wait-time reporting.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mrts::util {

/// Welford-style streaming mean / variance / min / max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land in
/// saturating edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bins() const { return bins_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Approximate quantile (q in [0,1]) by linear interpolation within bins.
  [[nodiscard]] double quantile(double q) const;

  /// Renders a compact ASCII bar chart, one line per bin.
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

}  // namespace mrts::util
