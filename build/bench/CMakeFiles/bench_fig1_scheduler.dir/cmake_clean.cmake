file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_scheduler.dir/bench_fig1_scheduler.cpp.o"
  "CMakeFiles/bench_fig1_scheduler.dir/bench_fig1_scheduler.cpp.o.d"
  "bench_fig1_scheduler"
  "bench_fig1_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
