// Ablation (paper §II.E): the five swapping schemes of the storage layer —
// LRU, LFU, MRU, MU, LU — compared on the out-of-core PCDM and NUPDR
// workloads under a tight memory budget. The paper: "LRU enjoys highest
// performance most of the time; for some applications (e.g., PCDM) the LFU
// can be up to 7% faster."

#include "bench_common.hpp"

using namespace mrts;
using namespace mrts::bench;

int main() {
  BenchReport report(
      "swap_schemes",
      "Swapping-scheme ablation — OPCDM and ONUPDR under a tight budget",
      "LRU is best most of the time; LFU can edge it out for PCDM; MRU/MU "
      "are poor fits for this access pattern");

  const auto pcdm_problem = uniform_problem(80000);
  const auto nupdr_problem = graded_problem(80000);

  Table t({"scheme", "OPCDM time (s)", "OPCDM loads", "ONUPDR time (s)",
           "ONUPDR loads"});
  for (auto scheme :
       {storage::EvictionScheme::kLru, storage::EvictionScheme::kLfu,
        storage::EvictionScheme::kMru, storage::EvictionScheme::kMu,
        storage::EvictionScheme::kLu}) {
    auto cluster = ooc_cluster(2, 2048, core::SpillMedium::kFile);
    cluster.runtime.ooc.scheme = scheme;
    pumg::OpcdmOocConfig pc{.cluster = cluster, .strips = 16};
    const auto rp = pumg::run_opcdm_ooc(pcdm_problem, pc);
    pumg::OnupdrOocConfig nc{.cluster = cluster,
                             .leaf_element_budget = 3000,
                             .max_concurrent_leaves = 4};
    const auto rn = pumg::run_onupdr_ooc(nupdr_problem, nc);
    t.row(std::string(storage::to_string(scheme)), rp.report.total_seconds,
          rp.objects_loaded, rn.report.total_seconds, rn.objects_loaded);
  }
  report.add("schemes", std::move(t));
  return 0;
}
