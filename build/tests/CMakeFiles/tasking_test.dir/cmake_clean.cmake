file(REMOVE_RECURSE
  "CMakeFiles/tasking_test.dir/tasking_test.cpp.o"
  "CMakeFiles/tasking_test.dir/tasking_test.cpp.o.d"
  "tasking_test"
  "tasking_test.pdb"
  "tasking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
