#include "mesh/geom.hpp"

#include <algorithm>
#include <limits>

namespace mrts::mesh {

std::optional<Point2> circumcenter(const Point2& a, const Point2& b,
                                   const Point2& c) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double acx = c.x - a.x;
  const double acy = c.y - a.y;
  const double d = 2.0 * (abx * acy - aby * acx);
  if (d == 0.0 || !std::isfinite(d)) return std::nullopt;
  const double ab2 = abx * abx + aby * aby;
  const double ac2 = acx * acx + acy * acy;
  const double ux = (acy * ab2 - aby * ac2) / d;
  const double uy = (abx * ac2 - acx * ab2) / d;
  if (!std::isfinite(ux) || !std::isfinite(uy)) return std::nullopt;
  return Point2{a.x + ux, a.y + uy};
}

double circumradius2(const Point2& a, const Point2& b, const Point2& c) {
  const auto cc = circumcenter(a, b, c);
  if (!cc) return std::numeric_limits<double>::infinity();
  return dist2(*cc, a);
}

double min_angle_deg(const Point2& a, const Point2& b, const Point2& c) {
  auto angle_at = [](const Point2& v, const Point2& p, const Point2& q) {
    const double ux = p.x - v.x, uy = p.y - v.y;
    const double vx = q.x - v.x, vy = q.y - v.y;
    const double nu = std::sqrt(ux * ux + uy * uy);
    const double nv = std::sqrt(vx * vx + vy * vy);
    if (nu == 0.0 || nv == 0.0) return 0.0;
    const double cosv = std::clamp((ux * vx + uy * vy) / (nu * nv), -1.0, 1.0);
    return std::acos(cosv) * 180.0 / 3.14159265358979323846;
  };
  return std::min({angle_at(a, b, c), angle_at(b, c, a), angle_at(c, a, b)});
}

double shortest_edge(const Point2& a, const Point2& b, const Point2& c) {
  return std::sqrt(std::min({dist2(a, b), dist2(b, c), dist2(c, a)}));
}

double longest_edge(const Point2& a, const Point2& b, const Point2& c) {
  return std::sqrt(std::max({dist2(a, b), dist2(b, c), dist2(c, a)}));
}

std::optional<std::pair<Point2, Point2>> clip_segment(const Point2& a,
                                                      const Point2& b,
                                                      const Rect& r) {
  double t0 = 0.0, t1 = 1.0;
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a.x - r.xlo, r.xhi - a.x, a.y - r.ylo, r.yhi - a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return std::nullopt;  // parallel and outside
      continue;
    }
    const double t = q[i] / p[i];
    if (p[i] < 0.0) {
      t0 = std::max(t0, t);
    } else {
      t1 = std::min(t1, t);
    }
    if (t0 > t1) return std::nullopt;
  }
  const Point2 pa = (t0 == 0.0) ? a : Point2{a.x + t0 * dx, a.y + t0 * dy};
  const Point2 pb = (t1 == 1.0) ? b : Point2{a.x + t1 * dx, a.y + t1 * dy};
  return std::pair{pa, pb};
}

}  // namespace mrts::mesh
