file(REMOVE_RECURSE
  "CMakeFiles/jobsim_test.dir/jobsim_test.cpp.o"
  "CMakeFiles/jobsim_test.dir/jobsim_test.cpp.o.d"
  "jobsim_test"
  "jobsim_test.pdb"
  "jobsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
