# Empty compiler generated dependencies file for mrts_simnet.
# This may be replaced when dependencies are built.
