// Microbenchmarks (google-benchmark) of the runtime primitives underneath
// the experiment harnesses: geometric predicates, serialization, storage
// round trips, active-message delivery, task pools, and point insertion.

#include <benchmark/benchmark.h>

#include "core/runtime.hpp"
#include "mesh/refine.hpp"
#include "simnet/fabric.hpp"
#include "storage/file_store.hpp"
#include "storage/mem_store.hpp"
#include "tasking/task_pool.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace {

using namespace mrts;

void BM_Orient2dFiltered(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<mesh::Point2> pts(3000);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mesh::orient2d(pts[i % 3000], pts[(i + 1) % 3000], pts[(i + 2) % 3000]));
    ++i;
  }
}
BENCHMARK(BM_Orient2dFiltered);

void BM_Orient2dExactFallback(benchmark::State& state) {
  // Exactly collinear points with long mantissas force the exact path.
  const mesh::Point2 a{0.1, 0.1}, b{0.2, 0.2};
  const mesh::Point2 c{0.30000000000000004, 0.30000000000000004};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::orient2d(a, b, c));
  }
}
BENCHMARK(BM_Orient2dExactFallback);

void BM_Incircle(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<mesh::Point2> pts(4000);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::incircle(pts[i % 4000], pts[(i + 1) % 4000],
                                            pts[(i + 2) % 4000],
                                            pts[(i + 3) % 4000]));
    ++i;
  }
}
BENCHMARK(BM_Incircle);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ArchiveRoundTrip(benchmark::State& state) {
  std::vector<std::uint64_t> payload(
      static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    util::ByteWriter w;
    w.write_vector(payload);
    auto bytes = w.take();
    util::ByteReader r(bytes);
    benchmark::DoNotOptimize(r.read_vector<std::uint64_t>());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_ArchiveRoundTrip)->Arg(1 << 8)->Arg(1 << 14);

void BM_MemStoreRoundTrip(benchmark::State& state) {
  storage::MemStore store;
  std::vector<std::byte> blob(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    (void)store.store(1, blob);
    benchmark::DoNotOptimize(store.load(1));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_MemStoreRoundTrip)->Arg(1 << 12)->Arg(1 << 18);

void BM_FileStoreRoundTrip(benchmark::State& state) {
  storage::FileStore store(storage::make_temp_spill_dir("bench"));
  std::vector<std::byte> blob(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    (void)store.store(1, blob);
    benchmark::DoNotOptimize(store.load(1));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_FileStoreRoundTrip)->Arg(1 << 12)->Arg(1 << 18);

void BM_ActiveMessageDelivery(benchmark::State& state) {
  net::Fabric fabric(2);
  std::uint64_t sink = 0;
  const auto h = fabric.endpoint(1).register_handler(
      [&](net::NodeId, util::ByteReader& in) { sink += in.read<std::uint64_t>(); });
  util::ByteWriter w;
  w.write<std::uint64_t>(1);
  const auto payload = w.take();
  for (auto _ : state) {
    fabric.endpoint(0).send(1, h, payload);
    fabric.endpoint(1).poll();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ActiveMessageDelivery);

void BM_PoolSubmit(benchmark::State& state) {
  auto pool = tasking::make_pool(
      state.range(0) == 0 ? tasking::PoolBackend::kWorkStealing
                          : tasking::PoolBackend::kCentralQueue,
      2);
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    tasking::TaskGroup group(*pool);
    for (int i = 0; i < 64; ++i) {
      group.run([&] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_PoolSubmit)->Arg(0)->Arg(1);

void BM_DelaunayInsertion(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    mesh::Triangulation tri(mesh::Rect{0, 0, 1, 1});
    std::vector<mesh::Point2> pts(1000);
    for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
    state.ResumeTiming();
    for (const auto& p : pts) tri.insert_point(p);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DelaunayInsertion);

void BM_RuppertRefine10k(benchmark::State& state) {
  for (auto _ : state) {
    auto tri = mesh::refine_pslg(
        mesh::make_unit_square(),
        {.min_angle_deg = 20.0, .size_field = mesh::uniform_size(0.015)});
    benchmark::DoNotOptimize(tri.inside_triangles());
  }
}
BENCHMARK(BM_RuppertRefine10k);

void BM_MobileObjectSpillLoad(benchmark::State& state) {
  // One full spill + reload of a ~1.6 MB mesh-like mobile object.
  using namespace mrts::core;
  class Blob : public MobileObject {
   public:
    std::vector<std::uint64_t> data = std::vector<std::uint64_t>(200000, 7);
    void serialize(util::ByteWriter& out) const override {
      out.write_vector(data);
    }
    void deserialize(util::ByteReader& in) override {
      data = in.read_vector<std::uint64_t>();
    }
    std::size_t footprint_bytes() const override { return data.size() * 8; }
  };
  net::Fabric fabric(1);
  ObjectTypeRegistry registry;
  const TypeId type = registry.register_type<Blob>("blob");
  const HandlerId touch = registry.register_handler(
      type, [](Runtime&, MobileObject&, MobilePtr, NodeId, util::ByteReader&) {});
  RuntimeOptions options;
  options.ooc.memory_budget_bytes = 4 << 20;
  Runtime rt(0, fabric.endpoint(0), registry,
             std::make_unique<storage::MemStore>(), options);
  std::vector<MobilePtr> ptrs;
  for (int i = 0; i < 4; ++i) {
    ptrs.push_back(rt.create<Blob>(type).first);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    rt.send(ptrs[i % 4], touch, std::vector<std::byte>{});
    while (rt.progress_once()) {
    }
    ++i;
  }
  (void)touch;
}
BENCHMARK(BM_MobileObjectSpillLoad);

}  // namespace
