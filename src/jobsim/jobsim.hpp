#pragma once

// Cluster batch-scheduler simulator for the paper's Figure 1: how long jobs
// wait in the queue of a small shared cluster as a function of how many
// nodes they request. Implements FCFS with EASY backfilling (the policy of
// the PBS/Maui-era schedulers on clusters like SciClone) over a synthetic
// job trace: Poisson arrivals, power-of-two-biased widths, and heavy-tailed
// runtimes.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mrts::jobsim {

struct Job {
  double arrival_s = 0.0;
  int width = 1;         // nodes requested
  double runtime_s = 0.0;
};

struct ScheduledJob {
  Job job;
  double start_s = 0.0;

  [[nodiscard]] double wait_s() const { return start_s - job.arrival_s; }
  [[nodiscard]] double finish_s() const { return start_s + job.runtime_s; }
};

struct TraceConfig {
  double duration_s = 7 * 24 * 3600.0;  // one week
  int cluster_nodes = 128;
  /// Fraction of cluster capacity consumed on average. 0.70 reproduces the
  /// paper's Figure-1 wait-time shape on a 128-node cluster.
  double load = 0.70;
  /// Mean job runtime (exponential).
  double mean_runtime_s = 2.0 * 3600.0;
  std::uint64_t seed = 20110516;  // IPDPS 2011
};

/// Synthetic trace: widths drawn from a power-of-two-biased distribution,
/// arrival rate derived from the target load.
std::vector<Job> make_synthetic_trace(const TraceConfig& config);

/// FCFS + EASY backfill: jobs start in order; while the queue head waits
/// for its reservation, later jobs may run early iff they do not delay it.
std::vector<ScheduledJob> schedule_easy_backfill(int cluster_nodes,
                                                 std::vector<Job> jobs);

/// Strict FCFS (no backfilling) baseline for comparison.
std::vector<ScheduledJob> schedule_fcfs(int cluster_nodes,
                                        std::vector<Job> jobs);

/// Wait distribution per requested width bucket. The paper's Figure 1
/// describes typical waits, so the median is the headline statistic;
/// means are burst-dominated under bursty Poisson arrivals.
struct WaitByWidth {
  int width = 0;
  util::RunningStats wait_s;
  std::vector<double> samples_s;

  [[nodiscard]] double quantile_s(double q) const;
  [[nodiscard]] double median_s() const { return quantile_s(0.5); }
};

std::vector<WaitByWidth> wait_statistics(
    const std::vector<ScheduledJob>& schedule,
    const std::vector<int>& width_buckets);

/// Utilization achieved by a schedule over the span it covers.
double utilization(const std::vector<ScheduledJob>& schedule,
                   int cluster_nodes);

}  // namespace mrts::jobsim
