// Table VI: OPCDM computation / communication / disk-I/O breakdown and
// overlap under fully asynchronous messaging.

#include "bench_common.hpp"

using namespace mrts;
using namespace mrts::bench;

int main() {
  print_header(
      "Table VI — OPCDM time breakdown and overlap (4 nodes, 4 MB/node, "
      "modeled disk: 5 ms access + 50 MB/s)",
      "asynchronous small messages overlap well with disk I/O (paper: >50% "
      "overlap, up to 62%, on large problems)");

  Table t({"elements (10^3)", "total (s)", "comp %", "comm %", "disk %",
           "overlap %"});
  for (std::size_t target : {40000, 80000, 160000, 320000}) {
    const auto problem = uniform_problem(target);
    auto cluster = ooc_cluster(4, 4096, core::SpillMedium::kFile);
    cluster.disk_model = storage::DeviceModel{
        .access_latency = std::chrono::microseconds(5000),
        .bandwidth_bytes_per_sec = 50e6};
    // Overdecomposition scales with the problem (paper §II.C).
    const int strips = std::clamp<int>(static_cast<int>(target / 10000), 16, 64);
    pumg::OpcdmOocConfig config{.cluster = cluster, .strips = strips};
    const auto ooc = pumg::run_opcdm_ooc(problem, config);
    t.row(ooc.mesh.elements / 1000, ooc.report.total_seconds,
          ooc.report.comp_pct(), ooc.report.comm_pct(), ooc.report.disk_pct(),
          ooc.report.overlap_pct());
  }
  t.print();
  return 0;
}
