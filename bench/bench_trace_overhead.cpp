// Cost of the observability layer: span tracing is always compiled into
// this binary (MRTS_TRACE=ON), so the honest comparison is runtime-disabled
// vs runtime-enabled recording on an identical workload. A build with
// -DMRTS_TRACE=OFF removes even the disabled-path check (one relaxed atomic
// load per site), so the "off" rows here are an upper bound on what an
// untraced build pays.
//
// Two workloads bracket the cost:
//   opcdm mesh — representative: handlers do real refinement work, so the
//                per-event cost amortizes; expected <2% slowdown.
//   hop        — adversarial: near-empty handlers at ~7 events per hop put
//                the per-event cost (~a few hundred ns) on the critical
//                path; this bounds the worst case, not typical use.
//
// Each mode runs several times and reports the best run, which filters
// scheduler noise on a shared host.

#include "bench_common.hpp"
#include "chaos/workload.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

using namespace mrts;
using namespace mrts::bench;

namespace {

struct Outcome {
  double seconds = 0.0;
  std::uint64_t work = 0;  // hops or elements
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
};

void set_recorder(bool tracing) {
  auto& tr = obs::TraceRecorder::global();
  if (tracing) {
    tr.enable();
  } else {
    tr.disable();
    tr.reset();
  }
}

Outcome finish(Outcome out) {
  auto& tr = obs::TraceRecorder::global();
  out.events = tr.total_recorded();
  out.dropped = tr.total_dropped();
  tr.disable();
  return out;
}

Outcome run_hops(bool tracing, std::size_t routes) {
  set_recorder(tracing);
  core::ClusterOptions options;
  options.nodes = 4;
  options.runtime.ooc.memory_budget_bytes = 256u << 10;
  options.spill = core::SpillMedium::kMemory;
  core::Cluster cluster(options);

  chaos::HopWorkloadOptions wl;
  wl.payload_words = 1024;
  wl.routes = routes;
  wl.route_length = 8;
  wl.migrate_every = 4;
  chaos::HopWorkload workload(cluster, wl);
  workload.create_objects();
  workload.inject();

  util::WallTimer timer;
  (void)cluster.run();
  Outcome out;
  out.seconds = timer.seconds();
  out.work = workload.executed_hops();
  return finish(out);
}

Outcome run_mesh(bool tracing, std::size_t target) {
  set_recorder(tracing);
  const auto problem = uniform_problem(target);
  pumg::OpcdmOocConfig config{
      .cluster = ooc_cluster(4, 2048, core::SpillMedium::kMemory),
      .strips = 16};
  util::WallTimer timer;
  const auto r = pumg::run_opcdm_ooc(problem, config);
  Outcome out;
  out.seconds = timer.seconds();
  out.work = r.mesh.elements;
  return finish(out);
}

/// Interleaves off/on reps (after one discarded warm-up) so host frequency
/// or cache drift hits both modes equally, and keeps each mode's best run.
template <typename Fn>
std::pair<Outcome, Outcome> measure(int reps, Fn&& run) {
  (void)run(false);
  Outcome off, on;
  for (int i = 0; i < reps; ++i) {
    const Outcome o = run(false);
    if (off.seconds == 0.0 || o.seconds < off.seconds) off = o;
    const Outcome n = run(true);
    if (on.seconds == 0.0 || n.seconds < on.seconds) on = n;
  }
  return {off, on};
}

void add_pair(BenchReport& report, const std::string& label,
              const char* work_col, const Outcome& off, const Outcome& on) {
  Table t({"recorder", "best seconds", work_col, "events", "dropped",
           "vs off"});
  t.row("off", off.seconds, off.work, off.events, off.dropped, "1.00x");
  t.row("on", on.seconds, on.work, on.events, on.dropped,
        util::format("{:.3f}x",
                     off.seconds > 0 ? on.seconds / off.seconds : 0.0));
  report.add(label, std::move(t));
}

}  // namespace

int main() {
  BenchReport report(
      "trace_overhead", "observability (span tracing) overhead",
      "on a representative meshing workload span recording costs <2% wall "
      "time; near-empty handlers (hop workload) bound the worst case at the "
      "per-event cost; disabled, instrumentation is one relaxed atomic load "
      "per site");
  report.set_meta("trace_compiled_in",
                  obs::TraceRecorder::compiled_in() ? "true" : "false");

  {
    const auto [off, on] =
        measure(5, [](bool tracing) { return run_mesh(tracing, 150000); });
    add_pair(report, "opcdm_mesh_representative", "elements", off, on);
  }
  {
    const auto [off, on] =
        measure(5, [](bool tracing) { return run_hops(tracing, 4096); });
    add_pair(report, "hop_adversarial", "hops", off, on);
  }
  return 0;
}
