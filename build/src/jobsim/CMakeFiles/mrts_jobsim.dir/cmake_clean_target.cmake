file(REMOVE_RECURSE
  "libmrts_jobsim.a"
)
