// Segment-log engine seed sweep (ctest label "segment_log"): twenty seeds
// of the hop workload under the deterministic driver and a hard storage
// fault plan, run twice per seed — once spilling to the log-structured
// engine (group commit + tick-driven compaction racing the workload's
// overwrite traffic), once to the blob-per-object FileStore twin. The two
// engines sit below the same FaultStore/ReplicatedStore seam, so every
// injected fault and every logical op lands identically: the runs must end
// digest-equal, with all invariants intact, while the log engine actually
// compacts and amortizes device writes. A same-seed re-run must replay
// byte-identically — compaction is driven by virtual ticks, never wall
// time. Run selectively with `ctest -L segment_log`.

#include <gtest/gtest.h>

#include <iostream>
#include <string>

#include "chaos/chaos.hpp"
#include "chaos/workload.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace mrts::chaos {
namespace {

core::ClusterOptions engine_options(core::SpillMedium medium) {
  core::ClusterOptions options;
  options.nodes = 4;
  // Tiny budget against the workload's ballast: heavy spill/reload churn,
  // so overwritten generations pile up as segment garbage.
  options.runtime.ooc.memory_budget_bytes = 64u << 10;
  options.runtime.storage_retry.max_retries = 8;
  options.runtime.storage_retry.base_delay = std::chrono::microseconds(100);
  options.runtime.write_behind_max_bytes = 16u << 10;
  options.spill = medium;
  options.spill_tag = "seglog-sweep";
  // Aggressive engine knobs: a handful of 16 KiB spill blobs per segment,
  // commits every few records, compaction from the first tick that finds a
  // one-third-dead sealed segment — maintenance genuinely races the
  // workload instead of waiting for it to finish.
  options.log_store.group_commit_records = 4;
  options.log_store.group_commit_bytes = 32u << 10;
  options.log_store.flush_interval_ticks = 2;
  options.log_store.segment_target_bytes = 64u << 10;
  options.log_store.compact_garbage_ratio = 0.35;
  // Self-healing seam above the engine, exactly like the recovery sweep:
  // injected corruption/torn writes are absorbed by seal checks, the
  // mirror, and per-object checkpoints — under EITHER engine.
  options.replicate_spills = true;
  options.replication.breaker_failure_threshold = 3;
  options.replication.breaker_cooldown_ops = 16;
  options.object_checkpoints = true;
  options.max_run_time = std::chrono::seconds(120);
  return options;
}

ChaosPlan fault_plan(std::uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.storage.corruption_rate = 0.08;
  plan.storage.torn_write_rate = 0.04;
  plan.storage.load_failure_rate = 0.05;
  plan.net.delay_rate = 0.05;
  plan.net.max_delay_steps = 4;
  return plan;
}

HopWorkloadOptions sweep_workload(std::uint64_t seed) {
  HopWorkloadOptions wl;
  wl.objects_per_node = 4;
  wl.payload_words = 2048;  // 4 x 16 KiB per node against a 64 KiB budget
  wl.routes = 16;
  wl.route_length = 6;
  wl.migrate_every = 3;
  wl.seed = seed;
  return wl;
}

struct SweepOutcome {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t expected = 0;
  storage::BackendStats backend;  // summed over nodes (primary view)
  std::string trace_text;
  std::uint32_t trace_crc = 0;
  InvariantReport invariants;
  bool timed_out = false;
};

SweepOutcome run_engine(std::uint64_t seed, core::SpillMedium medium) {
  Harness harness(fault_plan(seed));
  core::ClusterOptions options = engine_options(medium);
  harness.instrument(options);
  core::Cluster cluster(options);
  HopWorkload workload(cluster, sweep_workload(seed));
  workload.create_objects();
  workload.inject();
  const auto report = cluster.run();

  SweepOutcome out;
  out.timed_out = report.timed_out;
  out.executed = workload.executed_hops();
  out.expected = workload.expected_hops();
  out.digest = workload.state_digest();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto s =
        cluster.node(static_cast<net::NodeId>(i)).spill_backend().stats();
    out.backend.store_ops += s.store_ops;
    out.backend.device_write_ops += s.device_write_ops;
    out.backend.group_commits += s.group_commits;
    out.backend.compactions += s.compactions;
    out.backend.records_dropped += s.records_dropped;
  }
  out.invariants = harness.check(cluster);
  check_recovery(cluster, out.invariants);
  out.trace_text = harness.trace().text();
  out.trace_crc = harness.trace().crc();
  return out;
}

class SegmentLogSeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    auto& tr = obs::TraceRecorder::global();
    tr.disable();
    tr.reset();
    tr.enable({.ring_capacity = 1u << 16, .clock = obs::TraceClock::kVirtual});
  }
  void TearDown() override {
    auto& tr = obs::TraceRecorder::global();
    tr.disable();
    if (HasFailure() && obs::TraceRecorder::compiled_in()) {
      const std::string path =
          "seglog_fail_seed" + std::to_string(GetParam()) + ".json";
      const auto st = obs::write_chrome_trace(path, tr);
      std::cerr << (st.is_ok() ? "wrote trace artifact " + path
                               : "trace artifact export failed: " +
                                     st.to_string())
                << "\n";
    }
    tr.reset();
  }
};

TEST_P(SegmentLogSeedSweep, DigestEqualsFileStoreTwinUnderFaults) {
  const std::uint64_t seed = GetParam();
  const SweepOutcome file = run_engine(seed, core::SpillMedium::kFile);
  ASSERT_FALSE(file.timed_out);
  ASSERT_EQ(file.executed, file.expected);
  ASSERT_TRUE(file.invariants.ok()) << file.invariants.to_string();
  EXPECT_EQ(file.backend.compactions, 0u)
      << "blob-per-object twin has nothing to compact";

  const SweepOutcome log = run_engine(seed, core::SpillMedium::kSegmentLog);
  ASSERT_FALSE(log.timed_out);
  EXPECT_EQ(log.executed, log.expected);
  EXPECT_TRUE(log.invariants.ok())
      << "seed " << seed << ":\n"
      << log.invariants.to_string() << "\ntrace tail:\n"
      << log.trace_text.substr(
             log.trace_text.size() > 2000 ? log.trace_text.size() - 2000 : 0);

  // Same seed, same faults, different engine: application state must be
  // byte-identical — the engine swap is invisible above the Backend seam.
  EXPECT_EQ(log.digest, file.digest) << "seed " << seed;

  // And the log engine must have actually done log-structured work while
  // the workload ran: commits batching spill stores, compaction reclaiming
  // overwritten generations, fewer device writes than blob-per-object.
  EXPECT_GT(log.backend.group_commits, 0u) << "seed " << seed;
  EXPECT_GT(log.backend.compactions, 0u)
      << "seed " << seed << ": no compaction raced the workload; the sweep "
      << "proves nothing — lower compact_garbage_ratio or segment size";
  EXPECT_GT(log.backend.records_dropped, 0u) << "seed " << seed;
  EXPECT_LT(log.backend.device_write_ops, file.backend.device_write_ops)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, SegmentLogSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// Group commit deadlines and compaction are driven by drain_completions
// virtual ticks, so a same-seed re-run — compaction, faults, and all — must
// replay byte-identically.
TEST(SegmentLogReplay, CompactingFaultedRunReplaysByteIdentical) {
  auto& tr = obs::TraceRecorder::global();
  tr.disable();
  tr.reset();
  tr.enable({.ring_capacity = 1u << 16, .clock = obs::TraceClock::kVirtual});
  const SweepOutcome a = run_engine(7, core::SpillMedium::kSegmentLog);
  tr.disable();
  tr.reset();
  tr.enable({.ring_capacity = 1u << 16, .clock = obs::TraceClock::kVirtual});
  const SweepOutcome b = run_engine(7, core::SpillMedium::kSegmentLog);
  tr.disable();
  tr.reset();
  ASSERT_GT(a.trace_text.size(), 0u);
  EXPECT_GT(a.backend.compactions, 0u);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.trace_text, b.trace_text);  // byte-identical, not just CRC
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.backend.group_commits, b.backend.group_commits);
  EXPECT_EQ(a.backend.compactions, b.backend.compactions);
  EXPECT_EQ(a.backend.records_dropped, b.backend.records_dropped);
}

}  // namespace
}  // namespace mrts::chaos
