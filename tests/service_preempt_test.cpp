// Preemption correctness (ctest label "service"): a job checkpointed at ANY
// phase boundary — serialized to images, destroyed, budget released, then
// resumed on whatever nodes are free — must finish with a state digest
// byte-equal to an uninterrupted twin run of the same spec. Phase mutations
// are a pure function of (job seed, phase, object index), never of
// placement or tick, which is exactly what makes this hold.

#include <gtest/gtest.h>

#include "service/meshing_service.hpp"

namespace mrts::service {
namespace {

core::ClusterOptions cluster_options(std::size_t nodes,
                                     std::size_t budget_bytes) {
  core::ClusterOptions o;
  o.nodes = nodes;
  o.runtime.ooc.memory_budget_bytes = budget_bytes;
  o.spill = core::SpillMedium::kMemory;
  return o;
}

jobsim::ServiceJob spec(jobsim::JobClass cls, std::uint32_t phases) {
  jobsim::ServiceJob j;
  j.id = 42;
  j.tenant = 0;
  j.job_class = cls;
  j.width = 2;
  j.working_set_bytes = 48u << 10;
  j.phases = phases;
  j.seed = 0xFEEDFACEull + static_cast<std::uint64_t>(cls);
  return j;
}

ServiceOptions manual_options() {
  ServiceOptions so;
  so.tenants = 1;
  so.preempt_enabled = false;  // the tests drive preempt_job directly
  return so;
}

/// The job's digest after an uninterrupted run.
std::uint64_t twin_digest(const jobsim::ServiceJob& j) {
  core::Cluster cluster(cluster_options(2, 256u << 10));
  MeshingService svc(cluster, manual_options());
  svc.submit(j);
  while (svc.tick()) {
  }
  EXPECT_EQ(svc.completed_count(), 1u);
  return svc.job_digest(j.id);
}

/// The job's digest when preempted after `boundary` completed phases and
/// resumed by the next tick's admission pass.
std::uint64_t preempted_digest(const jobsim::ServiceJob& j,
                               std::uint32_t boundary,
                               std::uint64_t* preempted_out = nullptr) {
  core::Cluster cluster(cluster_options(2, 256u << 10));
  MeshingService svc(cluster, manual_options());
  svc.submit(j);
  for (std::uint32_t t = 0; t < boundary; ++t) {
    EXPECT_TRUE(svc.tick());
  }
  EXPECT_TRUE(svc.preempt_job(j.id));
  EXPECT_EQ(svc.running_jobs(), 0u);
  EXPECT_EQ(svc.queued_jobs(), 1u);
  while (svc.tick()) {
  }
  EXPECT_EQ(svc.completed_count(), 1u);
  EXPECT_EQ(svc.expected_phase_hits(), svc.executed_phase_hits())
      << "preemption must neither drop nor replay a phase";
  if (preempted_out != nullptr) *preempted_out = svc.preempted_count();
  return svc.job_digest(j.id);
}

class PreemptEveryBoundary
    : public ::testing::TestWithParam<jobsim::JobClass> {};

TEST_P(PreemptEveryBoundary, ResumedDigestEqualsUninterruptedTwin) {
  const jobsim::ServiceJob j = spec(GetParam(), 5);
  const std::uint64_t twin = twin_digest(j);
  ASSERT_NE(twin, 0u);
  for (std::uint32_t boundary = 0; boundary < j.phases; ++boundary) {
    std::uint64_t preemptions = 0;
    const std::uint64_t resumed = preempted_digest(j, boundary, &preemptions);
    EXPECT_EQ(preemptions, 1u) << "boundary " << boundary;
    EXPECT_EQ(resumed, twin)
        << to_string(GetParam()) << " diverges when preempted after phase "
        << boundary;
  }
}

INSTANTIATE_TEST_SUITE_P(AllJobClasses, PreemptEveryBoundary,
                         ::testing::Values(jobsim::JobClass::kUpdr,
                                           jobsim::JobClass::kNupdr,
                                           jobsim::JobClass::kPcdm));

TEST(Preempt, SurvivesBackToBackPreemptions) {
  const jobsim::ServiceJob j = spec(jobsim::JobClass::kNupdr, 6);
  const std::uint64_t twin = twin_digest(j);

  core::Cluster cluster(cluster_options(2, 256u << 10));
  MeshingService svc(cluster, manual_options());
  svc.submit(j);
  svc.tick();
  ASSERT_TRUE(svc.preempt_job(j.id));  // after phase 0
  svc.tick();                          // resume, run phase 1
  svc.tick();                          // phase 2
  ASSERT_TRUE(svc.preempt_job(j.id));  // after phase 2
  while (svc.tick()) {
  }
  EXPECT_EQ(svc.preempted_count(), 2u);
  EXPECT_EQ(svc.completed_count(), 1u);
  EXPECT_EQ(svc.job_digest(j.id), twin);
}

TEST(Preempt, PreemptingAnUnknownJobIsANoOp) {
  core::Cluster cluster(cluster_options(2, 256u << 10));
  MeshingService svc(cluster, manual_options());
  EXPECT_FALSE(svc.preempt_job(999));
}

// The policy end of the mechanism: a starved queue head past its patience
// preempts the hogging tenant, runs, and the victim still completes with a
// twin-equal digest.
TEST(Preempt, PolicyPreemptsTheHogAndBothTenantsFinish) {
  jobsim::ServiceJob hog = spec(jobsim::JobClass::kUpdr, 12);
  hog.id = 1;
  hog.tenant = 0;
  hog.width = 1;
  hog.working_set_bytes = 40u << 10;
  const std::uint64_t hog_twin = twin_digest(hog);

  core::Cluster cluster(cluster_options(1, 64u << 10));
  ServiceOptions so;
  so.tenants = 2;
  so.preempt_enabled = true;
  so.preempt_patience_ticks = 3;
  so.min_run_ticks_before_preempt = 1;
  MeshingService svc(cluster, so);

  jobsim::ServiceJob vip = spec(jobsim::JobClass::kPcdm, 2);
  vip.id = 2;
  vip.tenant = 1;
  vip.width = 1;
  vip.working_set_bytes = 40u << 10;

  svc.submit(hog);  // fills the single node's committable capacity
  svc.tick();
  svc.submit(vip);  // queues behind the hog
  while (svc.tick()) {
  }
  EXPECT_TRUE(svc.drained());
  EXPECT_FALSE(svc.stalled());
  EXPECT_GE(svc.preempted_count(), 1u);
  EXPECT_EQ(svc.completed_count(), 2u);
  EXPECT_EQ(svc.shed_count(), 0u);
  // The preempted hog still ends byte-equal to its uninterrupted twin.
  EXPECT_EQ(svc.job_digest(hog.id), hog_twin);
  const auto windows = svc.tenant_windows();
  EXPECT_EQ(windows[1].completed, 1u);
  EXPECT_GE(windows[0].preempted, 1u);
}

}  // namespace
}  // namespace mrts::service
