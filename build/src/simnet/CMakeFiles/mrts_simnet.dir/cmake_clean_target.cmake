file(REMOVE_RECURSE
  "libmrts_simnet.a"
)
