#pragma once

// Out-of-core ports of the three PUMG methods onto the MRTS runtime
// (paper §III and [1][2]):
//
//   OPCDM  — every strip is a mobile object; boundary-split batches travel
//            as one-sided messages directly between strip objects; the run
//            ends at natural MRTS quiescence. Fully asynchronous.
//   OUPDR  — grid cells are mobile objects; a coordinator object drives
//            bulk-synchronous phases: cells refine, report "done" with the
//            set of neighbours they dirtied, the coordinator launches the
//            next phase. Structured communication + global synchronization.
//   ONUPDR — quadtree leaves are mobile objects; a refinement-queue object
//            (locked in-core, as the paper prescribes) owns the scheduling:
//            it dispatches one leaf at a time per free neighbourhood,
//            carrying pending boundary splits in the refine message, and
//            workers report dirtied leaves back via `update` messages.
//            Optionally (paper §III "Findings") each dispatch uses a
//            multicast mobile message to collect the leaf and its buffer
//            in-core on one node first, and boundary splits are then
//            applied through direct inline handler calls.
//
// All cell objects serialize their full subdomain triangulation, so the
// out-of-core layer can swap any of them to disk between messages.

#include "core/cluster.hpp"
#include "pumg/method.hpp"

namespace mrts::pumg {

struct OocRunResult {
  MeshRunStats mesh;
  core::RunReport report;  // timing breakdown of the main parallel phase
  std::uint64_t objects_spilled = 0;
  std::uint64_t objects_loaded = 0;
  std::uint64_t bytes_spilled = 0;
  std::uint64_t bytes_loaded = 0;
  /// Clean-spill elision activity: evictions that skipped serialize+store
  /// because the object was unmodified since its last spill (read-mostly
  /// reload traffic; see RuntimeOptions::spill_elision).
  std::uint64_t spills_elided = 0;
  std::uint64_t bytes_spill_elided = 0;
  std::uint64_t messages_executed = 0;
  std::uint64_t inline_deliveries = 0;
  std::uint64_t migrations = 0;
  /// ONUPDR diagnostics: leaves still marked dirty / splits still pending in
  /// the refinement queue when the run went quiescent (must be zero).
  std::uint64_t dirty_left = 0;
  std::uint64_t pending_left = 0;
  /// Self-healing storage path activity; all zero on a fault-free run (the
  /// benches report these so regressions in the happy path are visible).
  std::uint64_t storage_retries = 0;
  std::uint64_t loads_recovered = 0;
  std::uint64_t checkpoint_recoveries = 0;
  std::uint64_t spills_reinstalled = 0;
  std::uint64_t objects_poisoned = 0;
  /// Per-node busy seconds of the main parallel phase derived from trace
  /// spans (obs::TraceRecorder aggregates), for cross-checking the
  /// NodeCounters breakdown in `report`. All zero unless the caller enabled
  /// the global recorder; excludes the stat-collection reload pass.
  std::vector<core::BusyTimes> span_busy;

  [[nodiscard]] std::string summary() const;
};

struct OpcdmOocConfig {
  core::ClusterOptions cluster;
  int strips = 8;
};

struct OupdrOocConfig {
  core::ClusterOptions cluster;
  int nx = 4;
  int ny = 4;
  std::size_t max_phases = 1000;
  /// Read-mostly post-refinement phase: after the mesh converges, run this
  /// many bulk-synchronous sweeps that send a read-only query to every cell
  /// (cells reload and are evicted again unmodified — the traffic pattern
  /// clean-spill elision targets).
  std::size_t query_rounds = 0;
};

struct OnupdrOocConfig {
  core::ClusterOptions cluster;
  std::size_t leaf_element_budget = 4000;
  int max_depth = 10;
  /// Use multicast mobile messages to collect leaf + buffer before each
  /// refinement (the paper's experimental extension); otherwise pending
  /// splits are carried through the refinement-queue object.
  bool use_multicast = false;
  /// Concurrently refining neighbourhoods (paper: number of workers).
  std::size_t max_concurrent_leaves = 8;
};

/// Each runner optionally copies out the final subdomains and the
/// decomposition (for conformity checking and visualization).
OocRunResult run_opcdm_ooc(const MeshProblem& problem,
                           const OpcdmOocConfig& config,
                           std::vector<Subdomain>* out_subs = nullptr,
                           Decomposition* out_decomp = nullptr);
OocRunResult run_oupdr_ooc(const MeshProblem& problem,
                           const OupdrOocConfig& config,
                           std::vector<Subdomain>* out_subs = nullptr,
                           Decomposition* out_decomp = nullptr);
OocRunResult run_onupdr_ooc(const MeshProblem& problem,
                            const OnupdrOocConfig& config,
                            std::vector<Subdomain>* out_subs = nullptr,
                            Decomposition* out_decomp = nullptr);

}  // namespace mrts::pumg
