#pragma once

// Constrained/conforming Delaunay triangulation with cavity-based
// (Bowyer-Watson) point insertion, built for guaranteed-quality refinement:
//   - a super-triangle bounds the domain; real vertices are strictly inside;
//   - point location walks from a hint using robust orientation tests;
//   - insertion carves the circumcircle cavity, never crossing constrained
//     (segment) edges, then stars the new vertex;
//   - input segments are recovered conformingly: a missing segment is split
//     at its midpoint until every subsegment is a Delaunay edge;
//   - subsegments carry the id of the input segment they subdivide, and
//     every split of an identified segment is logged so distributed meshers
//     (PCDM-style) can mirror splits onto neighbouring subdomains;
//   - triangles are classified inside/outside by flood fill from the super
//     triangle and from hole seeds, stopping at constrained edges.
//
// The structure is fully serializable (used when a mesh subdomain is a
// mobile object that swaps to disk).

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <limits>
#include <optional>
#include <vector>

#include "mesh/geom.hpp"
#include "mesh/pslg.hpp"
#include "util/archive.hpp"

namespace mrts::mesh {

using VertexId = std::uint32_t;
using TriId = std::uint32_t;
using SegId = std::uint32_t;

inline constexpr TriId kNoTri = std::numeric_limits<TriId>::max();
inline constexpr SegId kNoSeg = std::numeric_limits<SegId>::max();
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();

enum class VertexKind : std::uint8_t {
  kFree = 0,     // inserted by refinement in the interior
  kInput = 1,    // PSLG input point
  kSegment = 2,  // lies on a constrained segment
  kSuper = 3,    // super-triangle corner
};

struct TriRec {
  std::array<VertexId, 3> v{kNoVertex, kNoVertex, kNoVertex};
  /// nbr[i] is across the edge opposite v[i] (edge v[i+1]-v[i+2]).
  std::array<TriId, 3> nbr{kNoTri, kNoTri, kNoTri};
  /// seg[i] != kNoSeg marks the edge opposite v[i] as constrained, carrying
  /// the id of the input segment it subdivides.
  std::array<SegId, 3> seg{kNoSeg, kNoSeg, kNoSeg};
  std::uint8_t alive = 1;
  std::uint8_t inside = 1;
};

struct InsertResult {
  enum class Kind {
    kInserted,
    kDuplicate,          // an existing vertex coincides with the point
    kOnConstrainedEdge,  // the point lies on a constrained edge: split it
    kBlocked,            // guard found encroached segments (see refiner)
  };
  Kind kind = Kind::kInserted;
  VertexId vertex = kNoVertex;
  TriId tri = kNoTri;  // for kDuplicate/kOnConstrainedEdge context
  int edge = -1;       // for kOnConstrainedEdge
};

/// A subsegment recorded as (triangle, edge-index) plus its endpoints; used
/// by the refiner's encroachment queue.
struct SubSegment {
  TriId tri = kNoTri;
  int edge = -1;
};

/// One split of an identified segment: which input segment, the subsegment
/// endpoints that were split, the split point, and the vertex created there.
struct SplitEvent {
  SegId seg = kNoSeg;
  Point2 point;
  VertexId vertex = kNoVertex;
  Point2 end_a;
  Point2 end_b;
};

class Triangulation {
 public:
  /// Builds the super-triangle around `bounds` (expanded by a safety
  /// factor). All inserted points must lie inside `bounds`.
  explicit Triangulation(const Rect& bounds);

  /// Constructs the conforming Delaunay triangulation of a PSLG: inserts
  /// input points, recovers all segments (assigning SegId = index into
  /// pslg.segments), and classifies inside/outside using the hole seeds.
  static Triangulation conforming(const Pslg& pslg);

  // --- queries ---------------------------------------------------------------

  [[nodiscard]] std::size_t vertex_count() const { return verts_.size(); }
  [[nodiscard]] const Point2& point(VertexId v) const { return verts_[v]; }
  [[nodiscard]] VertexKind kind(VertexId v) const { return kinds_[v]; }
  [[nodiscard]] const TriRec& tri(TriId t) const { return tris_[t]; }
  [[nodiscard]] std::size_t tri_slots() const { return tris_.size(); }
  [[nodiscard]] std::size_t alive_triangles() const { return alive_count_; }
  /// Triangles classified inside the domain.
  [[nodiscard]] std::size_t inside_triangles() const { return inside_count_; }

  /// Walks from `hint` to the triangle containing p (ties broken towards
  /// lower-index edges; p must be inside the super-triangle).
  [[nodiscard]] TriId locate(const Point2& p, TriId hint = kNoTri) const;

  struct BarrierLocate {
    TriId tri = kNoTri;
    bool blocked = false;  // walk hit a constrained edge before reaching p
    int edge = -1;         // the constrained edge of `tri` that was hit
  };

  /// Like locate, but stops at the first constrained edge the walk would
  /// cross. Used by refinement: a circumcenter separated from its triangle
  /// by a subsegment means that subsegment must be split instead (it also
  /// keeps runaway circumcenters of very flat triangles from walking past
  /// the super-triangle).
  [[nodiscard]] BarrierLocate locate_stopping_at_segments(const Point2& p,
                                                          TriId hint) const;

  /// Returns the triangle having directed edge (a, b), with its edge index,
  /// or nullopt if (a, b) is not an edge. O(degree of a).
  [[nodiscard]] std::optional<std::pair<TriId, int>> find_edge(
      VertexId a, VertexId b) const;

  // --- construction ------------------------------------------------------------

  /// Delaunay-inserts a point. When `guard_segments` is true and the cavity
  /// boundary contains a constrained edge whose diametral circle contains p,
  /// nothing is inserted, kBlocked is returned, and the offending
  /// subsegments are appended to `blocked_out`.
  InsertResult insert_point(const Point2& p, TriId hint = kNoTri,
                            bool guard_segments = false,
                            std::vector<SubSegment>* blocked_out = nullptr);

  /// Inserts input segment (a, b) as a true constrained edge under id `id`
  /// (no Steiner points: crossed triangles are removed and the two
  /// pseudo-polygons retriangulated). Vertices lying exactly on the segment
  /// split it at those vertices.
  void insert_segment(VertexId a, VertexId b, SegId id);

  /// Splits the constrained edge `edge` of `tri` at its midpoint; returns
  /// the new vertex. The split is appended to the split log.
  VertexId split_subsegment(TriId tri, int edge);

  /// Marks outside triangles: flood from the super corners and from each
  /// hole seed, without crossing constrained edges.
  void classify(const std::vector<Point2>& hole_seeds);

  // --- refinement support ----------------------------------------------------

  /// Triangles created by the most recent insert/split (the star around the
  /// new vertex). Valid until the next mutation.
  [[nodiscard]] const std::vector<TriId>& last_created() const {
    return created_;
  }

  /// Splits of identified segments since the last drain, in the order they
  /// happened.
  [[nodiscard]] std::vector<SplitEvent> drain_split_log() {
    return std::move(split_log_);
  }

  /// Region-based reclassification: floods maximal groups of inside
  /// triangles not separated by constrained edges and keeps a region only
  /// if `keep` accepts the centroid of its largest triangle. Used by
  /// subdomain meshes to drop regions outside the global domain.
  void filter_inside_regions(const std::function<bool(const Point2&)>& keep);

  void set_vertex_kind(VertexId v, VertexKind k) { kinds_[v] = k; }

  // --- integrity / stats -------------------------------------------------------

  /// Validates structural invariants (adjacency symmetry, orientation,
  /// liveness, constrained-edge symmetry). Returns an explanation of the
  /// first violation, or empty string if consistent.
  [[nodiscard]] std::string check_invariants() const;

  /// True if the empty-circumcircle property holds for every pair of
  /// adjacent alive triangles not separated by a constrained edge.
  [[nodiscard]] bool is_delaunay() const;

  /// Smallest interior angle over inside triangles, in degrees.
  [[nodiscard]] double min_inside_angle_deg() const;

  // --- serialization -------------------------------------------------------------

  void serialize(util::ByteWriter& out) const;
  static Triangulation deserialized(util::ByteReader& in);

  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Iterates alive inside triangles: fn(TriId, const TriRec&).
  template <typename Fn>
  void for_each_inside(Fn&& fn) const {
    for (TriId t = 0; t < tris_.size(); ++t) {
      if (tris_[t].alive && tris_[t].inside) fn(t, tris_[t]);
    }
  }

 private:
  Triangulation() = default;

  VertexId new_vertex(const Point2& p, VertexKind k);
  TriId new_tri();
  /// Flips the unconstrained edge `i` of `t` shared with its neighbour;
  /// both triangle slots are reused. Requires the surrounding quad be
  /// strictly convex (true when flipping a locally non-Delaunay edge).
  void flip_edge(TriId t, int i);
  /// Lawson legalization around vertex m starting from triangle `t`
  /// (which must be incident to m).
  void legalize(VertexId m, TriId t);
  /// Recursive helper of insert_segment (Anglada's algorithm). Triangles
  /// are created with vertices set but adjacency unstitched.
  void triangulate_pseudo_polygon(VertexId a, VertexId e,
                                  std::span<const VertexId> chain,
                                  std::vector<TriId>& out, bool inside);
  void kill_tri(TriId t);
  void set_inside(TriId t, bool inside);
  [[nodiscard]] bool has_super_vertex(const TriRec& t) const;
  [[nodiscard]] int edge_index_of_nbr(const TriRec& t, TriId n) const;

  /// One directed edge of the cavity boundary: (a, b) CCW around the
  /// cavity, the outer neighbor across it, its constraint id, and the
  /// inside-flag of the cavity triangle that contributed it (so region
  /// classification survives insertions whose cavity spans a just-
  /// unconstrained boundary, as in split_subsegment).
  struct CavityEdge {
    VertexId a;
    VertexId b;
    TriId outer;
    SegId seg;
    bool inside;
  };

  /// Collects the insertion cavity of p starting at triangle t0.
  void build_cavity(const Point2& p, TriId t0, std::vector<TriId>& cavity,
                    std::vector<CavityEdge>& boundary) const;

  /// Replaces the cavity with a star around the new vertex.
  void star_cavity(VertexId v, const std::vector<TriId>& cavity,
                   const std::vector<CavityEdge>& boundary);

  std::vector<Point2> verts_;
  std::vector<VertexKind> kinds_;
  std::vector<TriId> vert_tri_;  // some alive triangle incident to vertex
  std::vector<TriRec> tris_;
  std::vector<TriId> free_tris_;
  std::vector<TriId> created_;
  std::vector<SplitEvent> split_log_;
  std::size_t alive_count_ = 0;
  std::size_t inside_count_ = 0;
  mutable TriId last_located_ = 0;
  std::array<VertexId, 3> super_{kNoVertex, kNoVertex, kNoVertex};
};

/// Compact, renumbered copy of the inside triangles (vertices referenced by
/// at least one inside triangle). The exchange format between subdomain
/// meshes and the serialization payload of mesh mobile objects.
struct CompactMesh {
  std::vector<Point2> verts;
  std::vector<std::array<std::uint32_t, 3>> tris;

  [[nodiscard]] std::size_t footprint_bytes() const {
    return verts.size() * sizeof(Point2) + tris.size() * 12 + sizeof(*this);
  }
  void serialize(util::ByteWriter& out) const;
  static CompactMesh deserialized(util::ByteReader& in);
};

CompactMesh extract_inside(const Triangulation& t);

}  // namespace mrts::mesh
