# Empty compiler generated dependencies file for bench_tab4_oupdr_overlap.
# This may be replaced when dependencies are built.
