file(REMOVE_RECURSE
  "CMakeFiles/bench_overdecomposition.dir/bench_overdecomposition.cpp.o"
  "CMakeFiles/bench_overdecomposition.dir/bench_overdecomposition.cpp.o.d"
  "bench_overdecomposition"
  "bench_overdecomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overdecomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
