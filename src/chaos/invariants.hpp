#pragma once

// Cross-layer invariant checkers for chaos runs. Three layers are covered:
//
//   transport — TraceChecker folds the fabric's per-(src,dst) sequence
//     numbers into FIFO-order, exactly-once, and no-loss verdicts. Faults
//     the plan injected on purpose (drops, duplicates, delays, reorders)
//     are discounted: only *unexplained* anomalies count as violations.
//
//   directory — after quiescence every mobile object must be hosted by
//     exactly one node, and every cached remote location must reach that
//     host by chasing last_known pointers without cycling (lazy updates
//     may leave stale entries, but stale means "longer chain", never
//     "wrong answer").
//
//   out-of-core — no node's in-core high-watermark may exceed its memory
//     budget by more than the allowed reload overshoot.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cluster.hpp"
#include "simnet/fabric.hpp"

namespace mrts::core {
class HealthMonitor;
class MembershipManager;
}  // namespace mrts::core

namespace mrts::chaos {

struct InvariantReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  void add(std::string v) { violations.push_back(std::move(v)); }
  [[nodiscard]] std::string to_string() const;
};

/// Feeds on fabric MessageEvents; call finish() once the run is quiescent.
class TraceChecker {
 public:
  void on_message(const net::MessageEvent& event);

  /// Appends transport-level violations to `out`.
  void finish(InvariantReport& out) const;

  [[nodiscard]] std::uint64_t fifo_violations() const {
    return fifo_violations_;
  }
  /// Deliveries beyond the expected count (1, or 2 for an injected dup).
  [[nodiscard]] std::uint64_t duplicate_deliveries() const;
  /// Sent messages that were neither delivered nor injected-dropped.
  [[nodiscard]] std::uint64_t lost_messages() const;

 private:
  struct PairState {
    std::uint64_t max_sent = 0;
    std::uint64_t max_delivered = 0;
    std::unordered_map<std::uint64_t, std::uint32_t> delivered;
    std::unordered_set<std::uint64_t> dropped;
    std::unordered_set<std::uint64_t> duplicated;
    std::unordered_set<std::uint64_t> disordered;  // delayed or reordered
  };

  std::unordered_map<std::uint64_t, PairState> pairs_;
  std::uint64_t fifo_violations_ = 0;
};

/// Directory convergence after migration storms (see file comment).
void check_directory_convergence(core::Cluster& cluster, InvariantReport& out);

/// Every node's peak in-core bytes must stay within budget plus
/// `allowed_overshoot_bytes` (reloads may legally exceed the budget while
/// queues drain; see Runtime::schedule_loads).
void check_budget(core::Cluster& cluster, std::size_t allowed_overshoot_bytes,
                  InvariantReport& out);

/// No-silent-data-loss: under a survivable fault plan (replication and/or
/// object checkpoints enabled) the recovery ladder must resolve every
/// storage failure without poisoning — zero poisoned objects, zero dropped
/// messages, no kPoisoned ledger records on any node.
void check_recovery(core::Cluster& cluster, InvariantReport& out);

/// Message-queue accounting: at quiescence every object queue is empty, so
/// the queued_messages() gauge must read zero on every node. A nonzero
/// value means a drop path (poison, migration, destroy) leaked counter
/// updates — the balancer would then chase phantom load forever.
void check_queue_accounting(core::Cluster& cluster, InvariantReport& out);

/// Reliable-net: at quiescence every (src,dst) flow must balance end to
/// end — no unacked frames at any sender, no frames parked in any reorder
/// buffer, and each receiver dispatched exactly as many frames as its peer
/// sent it. Requires reliable_net.enabled; a cluster without the link is a
/// violation (the caller asked for a guarantee nothing provides).
void check_exactly_once(core::Cluster& cluster, InvariantReport& out);

/// Elastic membership: at quiescence every scheduled transition fired, no
/// speculation window is still open (no pending claims, no frozen entries),
/// no node is stuck Draining, drained/down nodes host nothing, and — the
/// no-silent-loss headline — the manager recorded zero lost objects.
void check_membership(core::Cluster& cluster,
                      const core::MembershipManager& manager,
                      InvariantReport& out);

/// Gray failures: a degraded-but-Up node slows the run down, it never hangs
/// or corrupts it. At quiescence nothing may still be waiting on such a node
/// — every reliable tx flow fully acked and flushed, every reorder buffer
/// empty — and latency must never have escalated into loss: zero poisoned
/// objects, zero messages dropped against poisoned objects, no kPoisoned
/// ledger records. When a HealthMonitor drove the run, it must actually
/// have sampled, and each node's recovery count can't exceed its suspect
/// count (a stuck or double-counting state machine fails here). Pass
/// monitor == nullptr for mitigation-off twins.
void check_gray(core::Cluster& cluster, const core::HealthMonitor* monitor,
                InvariantReport& out);

/// Reliable-net: handlers observed strictly gap-free, in-order sequences on
/// every flow (ReliableLink::dispatch_order_violations is zero everywhere),
/// i.e. the reorder buffer restored FIFO before dispatch.
void check_fifo_restored(core::Cluster& cluster, InvariantReport& out);

// --- multi-tenant service layer -------------------------------------------
// Plain-data per-tenant window the service layer exports at the end of a
// run; kept here (not in src/service) so chaos never depends on the service
// while both sweeps and benches share one checker vocabulary.

struct TenantWindow {
  std::uint32_t tenant = 0;
  double weight = 1.0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;   // first admissions (resumes not re-counted)
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t preempted = 0;
  /// Message-handler executions attributed to this tenant's jobs.
  std::uint64_t phases_executed = 0;
  /// Committed working-set bytes at export time (0 once drained).
  std::size_t admitted_bytes = 0;
  std::size_t peak_admitted_bytes = 0;
  /// The tenant's weighted max-min share at the last recompute.
  std::size_t share_bytes = 0;
  /// Admissions that left the tenant's committed bytes above its share at
  /// decision time. The fair-share admission gate makes this impossible;
  /// nonzero means the enforcement path regressed.
  std::uint64_t over_share_admissions = 0;
};

/// Cross-tenant starvation: every tenant that offered work the service did
/// not shed must have completed at least one job and executed at least one
/// phase by the time the run drains.
void check_no_starvation(const std::vector<TenantWindow>& tenants,
                         InvariantReport& out);

/// Fair-share budget enforcement: no tenant was ever admitted past its
/// share (over_share_admissions == 0 everywhere), and when `expect_drained`
/// the committed-byte ledgers must have returned to zero (leaks mean
/// completion/preemption accounting lost bytes).
void check_tenant_budgets(const std::vector<TenantWindow>& tenants,
                          bool expect_drained, InvariantReport& out);

}  // namespace mrts::chaos
