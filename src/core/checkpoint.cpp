#include "core/checkpoint.hpp"

#include <fstream>

#include "util/crc32.hpp"
#include "util/format.hpp"

namespace mrts::core {
namespace {

constexpr std::uint64_t kMagic = 0x4D52545343503031ull;  // "MRTSCP01"

util::Status write_sealed_file(const std::filesystem::path& path,
                               std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return {util::StatusCode::kIoError, "cannot open " + path.string()};
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  const std::uint32_t crc = util::crc32(bytes);
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.flush();
  if (!out) {
    return {util::StatusCode::kIoError, "short write to " + path.string()};
  }
  return util::Status::ok();
}

util::Result<std::vector<std::byte>> read_sealed_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return util::Status(util::StatusCode::kNotFound,
                        "cannot open " + path.string());
  }
  const auto total = static_cast<std::size_t>(in.tellg());
  if (total < sizeof(std::uint32_t)) {
    return util::Status(util::StatusCode::kCorruption, "file too short");
  }
  std::vector<std::byte> bytes(total - sizeof(std::uint32_t));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  std::uint32_t crc = 0;
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!in) {
    return util::Status(util::StatusCode::kIoError, "short read");
  }
  if (util::crc32(bytes) != crc) {
    return util::Status(util::StatusCode::kCorruption,
                        "checkpoint CRC mismatch: " + path.string());
  }
  return bytes;
}

std::filesystem::path node_file(const std::filesystem::path& dir, NodeId n) {
  return dir / util::format("node{}.ckpt", n);
}

}  // namespace

util::Status checkpoint_cluster(Cluster& cluster,
                                const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return {util::StatusCode::kIoError,
            "cannot create " + dir.string() + ": " + ec.message()};
  }
  // Manifest: magic + node count + registered type count (sanity only).
  {
    util::ByteWriter w;
    w.write(kMagic);
    w.write<std::uint64_t>(cluster.size());
    w.write<std::uint64_t>(cluster.registry().type_count());
    const auto bytes = w.take();
    if (auto s = write_sealed_file(dir / "manifest", bytes); !s.is_ok()) {
      return s;
    }
  }
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    util::ByteWriter w;
    if (auto s = cluster.node(static_cast<NodeId>(n)).checkpoint_to(w);
        !s.is_ok()) {
      return s;
    }
    const auto bytes = w.take();
    if (auto s = write_sealed_file(node_file(dir, static_cast<NodeId>(n)),
                                   bytes);
        !s.is_ok()) {
      return s;
    }
  }
  return util::Status::ok();
}

util::Status restore_cluster(Cluster& cluster,
                             const std::filesystem::path& dir) {
  auto manifest = read_sealed_file(dir / "manifest");
  if (!manifest.is_ok()) return manifest.status();
  {
    util::ByteReader r(manifest.value());
    if (r.read<std::uint64_t>() != kMagic) {
      return {util::StatusCode::kCorruption, "not an MRTS checkpoint"};
    }
    if (r.read<std::uint64_t>() != cluster.size()) {
      return {util::StatusCode::kInvalidArgument,
              "checkpoint node count does not match the cluster"};
    }
    if (r.read<std::uint64_t>() != cluster.registry().type_count()) {
      return {util::StatusCode::kInvalidArgument,
              "checkpoint type count does not match the registry"};
    }
  }
  // Two-phase: read and CRC-validate every node image before installing a
  // single object, so a truncated or corrupt file leaves the whole cluster
  // unchanged (no partial restore). Runtime::restore_from validates its
  // image again before installing, covering corruption the file CRC missed.
  std::vector<std::vector<std::byte>> images;
  images.reserve(cluster.size());
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    auto bytes = read_sealed_file(node_file(dir, static_cast<NodeId>(n)));
    if (!bytes.is_ok()) return bytes.status();
    images.push_back(std::move(bytes).value());
  }
  std::vector<std::pair<MobilePtr, NodeId>> locations;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    Runtime& rt = cluster.node(static_cast<NodeId>(n));
    util::ByteReader r(images[n]);
    if (auto s = rt.restore_from(r); !s.is_ok()) return s;
  }
  // Teach every home node where its migrated objects live now.
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    Runtime& rt = cluster.node(static_cast<NodeId>(n));
    rt.for_each_local_object([&](MobilePtr ptr) {
      locations.emplace_back(ptr, static_cast<NodeId>(n));
    });
  }
  for (const auto& [ptr, where] : locations) {
    const NodeId home = ptr.home_node();
    if (home != where && home < cluster.size()) {
      cluster.node(home).note_remote_location(ptr, where);
    }
  }
  return util::Status::ok();
}

}  // namespace mrts::core
