file(REMOVE_RECURSE
  "CMakeFiles/mrts_core.dir/checkpoint.cpp.o"
  "CMakeFiles/mrts_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/mrts_core.dir/cluster.cpp.o"
  "CMakeFiles/mrts_core.dir/cluster.cpp.o.d"
  "CMakeFiles/mrts_core.dir/mobile_object.cpp.o"
  "CMakeFiles/mrts_core.dir/mobile_object.cpp.o.d"
  "CMakeFiles/mrts_core.dir/ooc_layer.cpp.o"
  "CMakeFiles/mrts_core.dir/ooc_layer.cpp.o.d"
  "CMakeFiles/mrts_core.dir/runtime.cpp.o"
  "CMakeFiles/mrts_core.dir/runtime.cpp.o.d"
  "libmrts_core.a"
  "libmrts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
