# Empty dependencies file for mrts_mesh.
# This may be replaced when dependencies are built.
