#pragma once

// Swapping schemes of the MRTS storage layer (paper §II.E): in addition to
// least-recently-used (LRU) the paper implements least-frequently-used
// (LFU), most-recently-used (MRU), most-used (MU) and least-used (LU). The
// paper does not define LFU/LU/MU formally; we use the common readings and
// document them here:
//   LRU — evict the object with the oldest last access.
//   MRU — evict the object with the newest last access.
//   LU  — evict the object with the smallest absolute access count.
//   MU  — evict the object with the largest absolute access count.
//   LFU — evict the object with the smallest exponentially-aged access
//         score (half-life kAgingHalfLife ticks), i.e. frequency rather
//         than raw count, so long-dead hot objects can still be evicted.
//
// Victim selection takes an `evictable` predicate so the out-of-core layer
// can exclude locked (pinned) and message-active objects. Selection is a
// linear scan over resident objects: resident counts are small (hundreds to
// a few thousands) and eviction cost is dwarfed by the disk write that
// follows, so O(n) is deliberate simplicity, not an oversight.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "storage/backend.hpp"

namespace mrts::storage {

enum class EvictionScheme { kLru, kLfu, kMru, kMu, kLu };

[[nodiscard]] std::string_view to_string(EvictionScheme s);
[[nodiscard]] std::optional<EvictionScheme> parse_scheme(std::string_view name);

/// Tracks access recency/frequency of resident objects and picks eviction
/// victims according to a scheme. Not thread-safe; the out-of-core layer
/// serializes calls under its own mutex.
class EvictionPolicy {
 public:
  explicit EvictionPolicy(EvictionScheme scheme) : scheme_(scheme) {}

  /// Starts tracking a newly resident object.
  void on_insert(ObjectKey key);

  /// Records an access (message delivery or explicit touch).
  void on_access(ObjectKey key);

  /// Stops tracking an object (evicted or destroyed).
  void on_erase(ObjectKey key);

  [[nodiscard]] bool tracks(ObjectKey key) const { return meta_.contains(key); }
  [[nodiscard]] std::size_t size() const { return meta_.size(); }
  [[nodiscard]] EvictionScheme scheme() const { return scheme_; }

  /// Picks the best victim among tracked objects for which
  /// `evictable(key)` holds; nullopt if none qualifies.
  [[nodiscard]] std::optional<ObjectKey> victim(
      const std::function<bool(ObjectKey)>& evictable) const;

 private:
  struct Meta {
    std::uint64_t last_access = 0;
    std::uint64_t insert_tick = 0;
    std::uint64_t count = 0;
    double aged_score = 0.0;     // for LFU
    std::uint64_t aged_tick = 0;  // tick at which aged_score was last updated
  };

  static constexpr double kAgingHalfLife = 1024.0;

  [[nodiscard]] double aged_score_at(const Meta& m, std::uint64_t now) const;
  /// Scheme-specific badness: the victim is the tracked object with the
  /// highest badness.
  [[nodiscard]] double badness(const Meta& m, std::uint64_t now) const;

  EvictionScheme scheme_;
  std::uint64_t tick_ = 0;
  std::unordered_map<ObjectKey, Meta> meta_;
};

}  // namespace mrts::storage
