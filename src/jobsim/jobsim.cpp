#include "jobsim/jobsim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>

namespace mrts::jobsim {
namespace {

/// Widths observed on small academic clusters: mostly narrow jobs, a
/// power-of-two bias, occasional full-machine requests.
int draw_width(util::Rng& rng, int cluster_nodes) {
  const double u = rng.uniform();
  int width;
  if (u < 0.30) {
    width = 1 + static_cast<int>(rng.below(4));  // 1-4 nodes
  } else if (u < 0.60) {
    width = 1 << (2 + rng.below(3));  // 4, 8, 16
  } else if (u < 0.85) {
    width = 1 << (4 + rng.below(2));  // 16, 32
  } else if (u < 0.97) {
    width = 64;
  } else {
    width = cluster_nodes;  // whole machine
  }
  return std::min(width, cluster_nodes);
}

/// Tracks node availability as a step function over time.
class NodeTimeline {
 public:
  explicit NodeTimeline(int nodes) : total_(nodes) {}

  /// Nodes free at time t (counting jobs that end exactly at t as done).
  [[nodiscard]] int free_at(double t) const {
    int used = 0;
    for (const auto& [end, width] : running_) {
      if (end > t) used += width;
    }
    return total_ - used;
  }

  /// Earliest time >= t at which `width` nodes are simultaneously free.
  [[nodiscard]] double earliest_start(double t, int width) const {
    if (free_at(t) >= width) return t;
    // Candidate times are job completions.
    std::vector<double> ends;
    ends.reserve(running_.size());
    for (const auto& [end, w] : running_) {
      if (end > t) ends.push_back(end);
    }
    std::sort(ends.begin(), ends.end());
    for (double e : ends) {
      if (free_at(e) >= width) return e;
    }
    return t;  // unreachable if width <= total
  }

  void add(double end, int width) { running_.emplace_back(end, width); }

  /// Earliest completion strictly after t, or +inf.
  [[nodiscard]] double next_completion(double t) const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [end, w] : running_) {
      if (end > t) best = std::min(best, end);
    }
    return best;
  }

  void prune(double t) {
    std::erase_if(running_, [t](const auto& p) { return p.first <= t; });
  }

 private:
  int total_;
  std::vector<std::pair<double, int>> running_;  // (end time, width)
};

}  // namespace

std::vector<Job> make_synthetic_trace(const TraceConfig& config) {
  util::Rng rng(config.seed);
  // Expected node-seconds per job = E[width] * mean_runtime; arrival rate
  // chosen so the cluster runs at the requested load.
  double mean_width = 0.0;
  {
    util::Rng probe(config.seed ^ 0x5555);
    for (int i = 0; i < 4096; ++i) {
      mean_width += draw_width(probe, config.cluster_nodes);
    }
    mean_width /= 4096.0;
  }
  const double node_seconds_per_job = mean_width * config.mean_runtime_s;
  const double arrival_rate = config.load *
                              static_cast<double>(config.cluster_nodes) /
                              node_seconds_per_job;
  std::vector<Job> jobs;
  double t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / arrival_rate);
    if (t > config.duration_s) break;
    Job job;
    job.arrival_s = t;
    job.width = draw_width(rng, config.cluster_nodes);
    job.runtime_s = std::max(60.0, rng.exponential(config.mean_runtime_s));
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<ScheduledJob> schedule_easy_backfill(int cluster_nodes,
                                                 std::vector<Job> jobs) {
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.arrival_s < b.arrival_s;
  });
  std::vector<ScheduledJob> out;
  out.reserve(jobs.size());
  NodeTimeline timeline(cluster_nodes);
  std::deque<Job> queue;
  std::size_t next = 0;
  double now = 0.0;

  // Event loop: each iteration starts every job that can start at `now`,
  // then advances to the next interesting instant.
  while (next < jobs.size() || !queue.empty()) {
    while (next < jobs.size() && jobs[next].arrival_s <= now) {
      queue.push_back(jobs[next++]);
    }
    timeline.prune(now);
    bool started = true;
    while (started && !queue.empty()) {
      started = false;
      // FCFS head.
      if (timeline.free_at(now) >= queue.front().width) {
        const Job job = queue.front();
        queue.pop_front();
        timeline.add(now + job.runtime_s, job.width);
        out.push_back(ScheduledJob{job, now});
        started = true;
        continue;
      }
      // EASY backfill: the head gets a reservation at its earliest start;
      // a later job may run now iff it finishes by then or fits into the
      // nodes the reservation does not need.
      const double shadow = timeline.earliest_start(now, queue.front().width);
      const int spare_at_shadow = timeline.free_at(shadow) - queue.front().width;
      for (std::size_t k = 1; k < queue.size(); ++k) {
        const Job& cand = queue[k];
        if (timeline.free_at(now) < cand.width) continue;
        const bool fits_before_shadow = now + cand.runtime_s <= shadow;
        const bool fits_beside_head = cand.width <= spare_at_shadow;
        if (fits_before_shadow || fits_beside_head) {
          const Job job = cand;
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(k));
          timeline.add(now + job.runtime_s, job.width);
          out.push_back(ScheduledJob{job, now});
          started = true;
          break;
        }
      }
    }
    // Advance: next arrival or next completion (completions can unlock the
    // head or new backfill candidates).
    double next_time = std::numeric_limits<double>::infinity();
    if (next < jobs.size()) next_time = jobs[next].arrival_s;
    if (!queue.empty()) {
      next_time = std::min(next_time, timeline.next_completion(now));
    }
    if (next_time == std::numeric_limits<double>::infinity()) break;
    now = std::max(now + 1e-9, next_time);
  }
  return out;
}

std::vector<ScheduledJob> schedule_fcfs(int cluster_nodes,
                                        std::vector<Job> jobs) {
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.arrival_s < b.arrival_s;
  });
  std::vector<ScheduledJob> out;
  out.reserve(jobs.size());
  NodeTimeline timeline(cluster_nodes);
  // Strict FCFS: no overtaking — a job starts no earlier than the start of
  // its predecessor, at the first instant enough nodes are free.
  double prev_start = 0.0;
  for (const Job& job : jobs) {
    const double ready = std::max(job.arrival_s, prev_start);
    const double start = timeline.earliest_start(ready, job.width);
    timeline.add(start + job.runtime_s, job.width);
    out.push_back(ScheduledJob{job, start});
    prev_start = start;
  }
  return out;
}

std::vector<WaitByWidth> wait_statistics(
    const std::vector<ScheduledJob>& schedule,
    const std::vector<int>& width_buckets) {
  std::vector<WaitByWidth> out;
  out.reserve(width_buckets.size());
  for (int w : width_buckets) {
    WaitByWidth bucket;
    bucket.width = w;
    out.push_back(bucket);
  }
  for (const ScheduledJob& sj : schedule) {
    // Assign to the smallest bucket >= width.
    std::size_t best = width_buckets.size();
    for (std::size_t i = 0; i < width_buckets.size(); ++i) {
      if (sj.job.width <= width_buckets[i] &&
          (best == width_buckets.size() ||
           width_buckets[i] < width_buckets[best])) {
        best = i;
      }
    }
    if (best < out.size()) {
      out[best].wait_s.add(sj.wait_s());
      out[best].samples_s.push_back(sj.wait_s());
    }
  }
  return out;
}

double WaitByWidth::quantile_s(double q) const {
  if (samples_s.empty()) return 0.0;
  std::vector<double> sorted = samples_s;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

const char* to_string(JobClass c) {
  switch (c) {
    case JobClass::kUpdr: return "UPDR";
    case JobClass::kNupdr: return "NUPDR";
    case JobClass::kPcdm: return "PCDM";
  }
  return "?";
}

std::vector<ServiceJob> make_open_loop_jobs(const OpenLoopConfig& config) {
  util::Rng rng(config.seed);
  std::vector<ServiceJob> jobs;
  // Poisson process in continuous tick-time, floored to the enclosing tick
  // (the service admits at tick granularity).
  double t = 0.0;
  std::uint64_t id = 1;
  while (true) {
    t += rng.exponential(1.0 / std::max(config.arrivals_per_tick, 1e-9));
    if (t >= static_cast<double>(config.horizon_ticks)) break;
    ServiceJob job;
    job.id = id++;
    job.arrival_tick = static_cast<std::uint64_t>(t);
    job.tenant = static_cast<std::uint32_t>(
        rng.below(std::max<std::uint32_t>(config.tenants, 1)));
    const double u = rng.uniform();
    job.job_class = u < config.p_updr ? JobClass::kUpdr
                    : u < config.p_updr + config.p_nupdr ? JobClass::kNupdr
                                                         : JobClass::kPcdm;
    job.width = 1 + static_cast<int>(
                        rng.below(std::max<std::uint64_t>(
                            static_cast<std::uint64_t>(config.max_width), 1)));
    // Log-uniform working set: heavy traffic is a mix of small jobs and the
    // occasional memory hog, not a uniform band.
    const double lo = std::log(
        static_cast<double>(std::max<std::size_t>(config.min_working_set_bytes, 1)));
    const double hi = std::log(static_cast<double>(
        std::max(config.max_working_set_bytes, config.min_working_set_bytes)));
    job.working_set_bytes =
        static_cast<std::size_t>(std::exp(rng.uniform(lo, hi)));
    job.phases = config.min_phases +
                 static_cast<std::uint32_t>(rng.below(std::max<std::uint32_t>(
                     config.max_phases - config.min_phases + 1, 1)));
    std::uint64_t seed_state = config.seed ^ (job.id * 0x9E3779B97F4A7C15ull);
    job.seed = util::splitmix64(seed_state);  // distinct, reproducible per job
    jobs.push_back(job);
  }
  return jobs;
}

double offered_oversubscription(const std::vector<ServiceJob>& jobs,
                                std::size_t capacity_bytes) {
  if (capacity_bytes == 0) return 0.0;
  double total = 0.0;
  for (const ServiceJob& j : jobs) {
    total += static_cast<double>(j.working_set_bytes);
  }
  return total / static_cast<double>(capacity_bytes);
}

double utilization(const std::vector<ScheduledJob>& schedule,
                   int cluster_nodes) {
  if (schedule.empty()) return 0.0;
  double node_seconds = 0.0;
  double span_end = 0.0;
  double span_begin = std::numeric_limits<double>::infinity();
  for (const ScheduledJob& sj : schedule) {
    node_seconds += sj.job.runtime_s * sj.job.width;
    span_end = std::max(span_end, sj.finish_s());
    span_begin = std::min(span_begin, sj.start_s);
  }
  const double span = span_end - span_begin;
  return span > 0 ? node_seconds / (span * cluster_nodes) : 0.0;
}

}  // namespace mrts::jobsim
