#pragma once

// Per-backend circuit breaker. After `failure_threshold` consecutive hard
// failures the breaker opens: callers stop offering operations to the sick
// backend (the replicated store routes them to the mirror instead) until a
// cooldown of `cooldown_ops` skipped operations has elapsed, at which point
// one probe operation is let through (half-open). A successful probe closes
// the breaker; a failed probe re-opens it and restarts the cooldown.
//
// The cooldown is counted in operations, not wall time, so breaker behavior
// is a pure function of the operation schedule — deterministic chaos runs
// replay byte-for-byte. Transitions are published as obs metrics and trace
// instants by the owner (see ReplicatedStore).
//
// Thread safety: none; the owner serializes calls (ReplicatedStore holds
// its decision mutex across breaker updates).

#include <cstdint>
#include <string_view>

namespace mrts::storage {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

[[nodiscard]] constexpr std::string_view to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

class CircuitBreaker {
 public:
  CircuitBreaker(int failure_threshold, std::uint64_t cooldown_ops)
      : failure_threshold_(failure_threshold > 0 ? failure_threshold : 1),
        cooldown_ops_(cooldown_ops) {}

  /// Decide whether the protected backend may be offered this operation.
  /// Open: counts the skip, and once the cooldown elapses transitions to
  /// half-open and admits the operation as a probe.
  [[nodiscard]] bool allow() {
    switch (state_) {
      case BreakerState::kClosed:
        return true;
      case BreakerState::kHalfOpen:
        // One probe at a time: further ops wait for its verdict.
        return false;
      case BreakerState::kOpen:
        if (++skipped_ >= cooldown_ops_) {
          state_ = BreakerState::kHalfOpen;
          ++probes_;
          return true;
        }
        return false;
    }
    return true;
  }

  /// Outcome of an admitted operation. Returns true when the state changed
  /// (the owner then emits a transition event).
  bool on_success() {
    consecutive_failures_ = 0;
    if (state_ != BreakerState::kClosed) {
      state_ = BreakerState::kClosed;
      skipped_ = 0;
      return true;
    }
    return false;
  }

  bool on_failure() {
    if (state_ == BreakerState::kHalfOpen) {
      // Failed probe: straight back to open, cooldown restarts.
      state_ = BreakerState::kOpen;
      skipped_ = 0;
      return true;
    }
    if (state_ == BreakerState::kClosed &&
        ++consecutive_failures_ >= failure_threshold_) {
      state_ = BreakerState::kOpen;
      consecutive_failures_ = 0;
      skipped_ = 0;
      ++opens_;
      return true;
    }
    return false;
  }

  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] std::uint64_t opens() const { return opens_; }
  [[nodiscard]] std::uint64_t probes() const { return probes_; }

 private:
  const int failure_threshold_;
  const std::uint64_t cooldown_ops_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  std::uint64_t skipped_ = 0;  // ops skipped since the breaker opened
  std::uint64_t opens_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace mrts::storage
