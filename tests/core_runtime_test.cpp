// Single-node tests of the MRTS runtime: object lifetime, message delivery,
// out-of-core spilling/reloading, locking, priorities, inline delivery.

#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "simnet/fabric.hpp"
#include "storage/mem_store.hpp"

namespace mrts::core {
namespace {

/// Test mobile object: a named box of bytes plus an event log.
class Box : public MobileObject {
 public:
  std::uint64_t value = 0;
  std::vector<std::uint64_t> data;
  int register_calls = 0;

  void serialize(util::ByteWriter& out) const override {
    out.write(value);
    out.write_vector(data);
  }
  void deserialize(util::ByteReader& in) override {
    value = in.read<std::uint64_t>();
    data = in.read_vector<std::uint64_t>();
  }
  std::size_t footprint_bytes() const override {
    return sizeof(Box) + data.size() * sizeof(std::uint64_t);
  }
  void on_register(Runtime&, MobilePtr) override { ++register_calls; }
};

class RuntimeTest : public ::testing::Test {
 protected:
  explicit RuntimeTest(std::size_t budget_mb = 64) {
    RuntimeOptions options;
    options.ooc.memory_budget_bytes = budget_mb << 20;
    rt_ = std::make_unique<Runtime>(0, fabric_.endpoint(0), registry_,
                                    std::make_unique<storage::MemStore>(),
                                    options);
    type_ = registry_.register_type<Box>("box");
    h_add_ = registry_.register_handler(
        type_, [](Runtime&, MobileObject& obj, MobilePtr, NodeId,
                  util::ByteReader& in) {
          static_cast<Box&>(obj).value += in.read<std::uint64_t>();
        });
    h_grow_ = registry_.register_handler(
        type_, [](Runtime&, MobileObject& obj, MobilePtr, NodeId,
                  util::ByteReader& in) {
          auto& box = static_cast<Box&>(obj);
          box.data.resize(in.read<std::uint64_t>(), 7);
        });
    h_self_ = registry_.register_handler(
        type_, [this](Runtime& rt, MobileObject& obj, MobilePtr self, NodeId,
                      util::ByteReader& in) {
          auto ttl = in.read<std::uint64_t>();
          static_cast<Box&>(obj).value += 1;
          if (ttl > 0) {
            util::ByteWriter w;
            w.write(ttl - 1);
            rt.send(self, h_self_, w.take());
          }
        });
  }

  /// Pumps the control loop until it goes idle (or the iteration cap).
  void pump() {
    int quiet = 0;
    for (int i = 0; i < 200000 && quiet < 3; ++i) {
      if (!rt_->progress_once()) {
        if (rt_->is_idle()) ++quiet;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      } else {
        quiet = 0;
      }
    }
  }

  static std::vector<std::byte> arg_u64(std::uint64_t v) {
    util::ByteWriter w;
    w.write(v);
    return w.take();
  }

  MobilePtr make_box(std::size_t words = 0) {
    auto [ptr, box] = rt_->create<Box>(type_);
    box->data.resize(words, 1);
    rt_->refresh_footprint(ptr);
    return ptr;
  }

  Box& box_at(MobilePtr p) {
    auto* obj = rt_->peek(p);
    EXPECT_NE(obj, nullptr);
    return static_cast<Box&>(*obj);
  }

  net::Fabric fabric_{1};
  ObjectTypeRegistry registry_;
  std::unique_ptr<Runtime> rt_;
  TypeId type_ = 0;
  HandlerId h_add_ = 0, h_grow_ = 0, h_self_ = 0;
};

TEST_F(RuntimeTest, CreatePeekDestroy) {
  const MobilePtr p = make_box();
  EXPECT_TRUE(rt_->is_local(p));
  EXPECT_TRUE(rt_->is_in_core(p));
  EXPECT_EQ(p.home_node(), 0u);
  EXPECT_EQ(box_at(p).register_calls, 1);
  rt_->destroy(p);
  EXPECT_FALSE(rt_->is_local(p));
  EXPECT_EQ(rt_->peek(p), nullptr);
}

TEST_F(RuntimeTest, SendExecutesHandler) {
  const MobilePtr p = make_box();
  rt_->send(p, h_add_, arg_u64(5));
  rt_->send(p, h_add_, arg_u64(7));
  pump();
  EXPECT_EQ(box_at(p).value, 12u);
  EXPECT_EQ(rt_->counters().messages_executed.load(), 2u);
}

TEST_F(RuntimeTest, SelfSendChainsRun) {
  const MobilePtr p = make_box();
  rt_->send(p, h_self_, arg_u64(9));
  pump();
  EXPECT_EQ(box_at(p).value, 10u);  // initial message + 9 self-sends
}

TEST_F(RuntimeTest, MessageToDestroyedObjectIsDropped) {
  const MobilePtr p = make_box();
  rt_->destroy(p);
  rt_->send(p, h_add_, arg_u64(1));  // must not crash
  pump();
  EXPECT_EQ(rt_->counters().messages_executed.load(), 0u);
}

TEST_F(RuntimeTest, InlineDeliveryRunsSynchronously) {
  const MobilePtr p = make_box();
  const auto arg = arg_u64(3);
  EXPECT_TRUE(rt_->try_deliver_inline(p, h_add_, arg));
  EXPECT_EQ(box_at(p).value, 3u);  // no pump needed
  EXPECT_EQ(rt_->counters().inline_deliveries.load(), 1u);
}

class SmallBudgetTest : public RuntimeTest {
 protected:
  SmallBudgetTest() : RuntimeTest(1) {}  // 1 MB budget
};

TEST_F(SmallBudgetTest, PressureSpillsObjectsToDisk) {
  // Each box is ~80 KB; a dozen exceed the 1 MB budget.
  std::vector<MobilePtr> ptrs;
  for (int i = 0; i < 16; ++i) ptrs.push_back(make_box(10000));
  pump();
  rt_->flush_stores();
  EXPECT_GT(rt_->spill_backend().count(), 0u);
  EXPECT_LE(rt_->in_core_bytes(), rt_->options().ooc.memory_budget_bytes);
}

TEST_F(SmallBudgetTest, SpilledObjectReloadsOnMessage) {
  std::vector<MobilePtr> ptrs;
  for (int i = 0; i < 16; ++i) ptrs.push_back(make_box(10000));
  pump();
  rt_->flush_stores();
  // Find a spilled one and message it.
  MobilePtr victim = kNullPtr;
  for (MobilePtr p : ptrs) {
    if (!rt_->is_in_core(p)) {
      victim = p;
      break;
    }
  }
  ASSERT_FALSE(victim.is_null());
  rt_->send(victim, h_add_, arg_u64(11));
  pump();
  ASSERT_TRUE(rt_->is_in_core(victim));
  EXPECT_EQ(box_at(victim).value, 11u);
  EXPECT_GT(rt_->counters().objects_loaded.load(), 0u);
  // Data survived the round trip.
  EXPECT_EQ(box_at(victim).data.size(), 10000u);
  EXPECT_EQ(box_at(victim).data[5000], 1u);
}

TEST_F(SmallBudgetTest, EveryObjectStillReachableUnderChurn) {
  std::vector<MobilePtr> ptrs;
  for (int i = 0; i < 24; ++i) ptrs.push_back(make_box(5000));
  // Message all of them repeatedly; the runtime must juggle loads/evictions.
  for (int round = 0; round < 3; ++round) {
    for (MobilePtr p : ptrs) rt_->send(p, h_add_, arg_u64(1));
    pump();
  }
  for (MobilePtr p : ptrs) {
    rt_->prefetch(p);
  }
  pump();
  for (MobilePtr p : ptrs) {
    rt_->lock_in_core(p);
  }
  pump();
  for (MobilePtr p : ptrs) {
    ASSERT_TRUE(rt_->is_in_core(p)) << to_string(p);
    EXPECT_EQ(box_at(p).value, 3u);
  }
}

TEST_F(SmallBudgetTest, LockedObjectIsNeverEvicted) {
  const MobilePtr pinned = make_box(10000);
  rt_->lock_in_core(pinned);
  for (int i = 0; i < 16; ++i) make_box(10000);
  pump();
  rt_->flush_stores();
  EXPECT_TRUE(rt_->is_in_core(pinned));
  rt_->unlock(pinned);
}

TEST_F(SmallBudgetTest, LowPriorityEvictedBeforeHigh) {
  const MobilePtr low = make_box(10000);
  const MobilePtr high = make_box(10000);
  rt_->set_priority(low, kMinPriority);
  rt_->set_priority(high, kMaxPriority);
  // Apply pressure until at least one of them must go.
  for (int i = 0; i < 16 && rt_->is_in_core(low) && rt_->is_in_core(high);
       ++i) {
    make_box(10000);
    pump();
  }
  // If either got evicted, the low-priority one must have gone first.
  if (!rt_->is_in_core(high)) {
    EXPECT_FALSE(rt_->is_in_core(low));
  }
  EXPECT_FALSE(rt_->is_in_core(low));
}

TEST_F(SmallBudgetTest, FootprintGrowthTriggersEviction) {
  std::vector<MobilePtr> ptrs;
  for (int i = 0; i < 8; ++i) ptrs.push_back(make_box(100));
  const MobilePtr grower = make_box(100);
  rt_->send(grower, h_grow_, arg_u64(100000));  // grows to ~800 KB
  pump();
  rt_->flush_stores();
  EXPECT_GT(rt_->counters().objects_spilled.load(), 0u);
  // The grower itself may have been swapped by the soft-threshold trickle;
  // force it back and verify the grown payload survived.
  rt_->lock_in_core(grower);
  pump();
  ASSERT_TRUE(rt_->is_in_core(grower));
  EXPECT_EQ(box_at(grower).data.size(), 100000u);
}

TEST_F(SmallBudgetTest, PrefetchBringsObjectInCore) {
  std::vector<MobilePtr> ptrs;
  for (int i = 0; i < 16; ++i) ptrs.push_back(make_box(10000));
  pump();
  rt_->flush_stores();
  MobilePtr cold = kNullPtr;
  for (MobilePtr p : ptrs) {
    if (!rt_->is_in_core(p)) {
      cold = p;
      break;
    }
  }
  ASSERT_FALSE(cold.is_null());
  rt_->prefetch(cold);
  pump();
  EXPECT_TRUE(rt_->is_in_core(cold));
}

}  // namespace
}  // namespace mrts::core
