# Empty compiler generated dependencies file for mrts_util.
# This may be replaced when dependencies are built.
