#pragma once

// Out-of-core layer bookkeeping (paper §II.D/§II.E): tracks which objects
// are resident and how large they are, enforces the node's memory budget
// through the hard and soft swapping thresholds, and picks eviction victims
// by combining the configured swapping scheme with application-assigned
// priorities (lower-priority objects are always preferred as victims).
//
// Thresholds, per the paper:
//   hard — `hard_multiplier` times the size of the largest object currently
//          stored on disk (default 2); checked on allocation, forces
//          synchronous eviction when free memory after the allocation would
//          drop below it.
//   soft — `soft_fraction` of the total budget (default 1/2); when free
//          memory drops below it the layer advises background eviction.
//
// Called only from the owning runtime's control thread; not thread-safe.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "storage/eviction.hpp"

namespace mrts::core {

struct OocOptions {
  /// Total memory available to mobile objects on this node.
  std::size_t memory_budget_bytes = 256ull << 20;
  double hard_multiplier = 2.0;
  double soft_fraction = 0.5;
  storage::EvictionScheme scheme = storage::EvictionScheme::kLru;
  /// Maximum loads in flight at once (prefetch depth).
  int max_concurrent_loads = 2;
};

class OocLayer {
 public:
  explicit OocLayer(OocOptions options)
      : options_(options), policy_(options.scheme) {}

  // --- residency bookkeeping -------------------------------------------
  void on_install(std::uint64_t key, std::size_t bytes);
  void on_access(std::uint64_t key) { policy_.on_access(key); }
  void on_footprint_change(std::uint64_t key, std::size_t new_bytes);
  /// Object left memory (evicted or destroyed).
  void on_remove(std::uint64_t key);
  /// Object's serialized blob landed on disk (or was re-sealed at a new
  /// size). The layer tracks per-key blob sizes so the hard threshold —
  /// derived from the largest blob *currently* on the backend — deflates
  /// again once that blob is erased.
  void on_spilled(std::uint64_t key, std::size_t blob_bytes);
  /// Object's spill blob was erased from the backend (migration out,
  /// destroy, or a store that never landed).
  void on_spill_erased(std::uint64_t key);

  // --- thresholds --------------------------------------------------------
  /// Re-partitions the layer's memory budget at runtime (the service layer's
  /// fair-share mechanism). Takes effect immediately: free_bytes(),
  /// soft_pressure(), and hard_pressure() all answer against the new budget
  /// from the next call on, and the hard threshold's budget/2 cap deflates
  /// with it. Shrinking below the current in-core total is legal — the
  /// runtime must follow up with evictions (Runtime::set_memory_budget
  /// does). The largest-spilled watermark is independent of the budget and
  /// is untouched.
  void set_memory_budget(std::size_t bytes) {
    options_.memory_budget_bytes = bytes;
  }
  [[nodiscard]] std::size_t memory_budget_bytes() const {
    return options_.memory_budget_bytes;
  }

  /// Free memory remaining under the budget (0 when over).
  [[nodiscard]] std::size_t free_bytes() const;
  /// True when an allocation of `extra` bytes would leave free memory below
  /// the hard threshold: eviction must run before the allocation.
  [[nodiscard]] bool hard_pressure(std::size_t extra) const;
  /// True when free memory is below the soft threshold: background eviction
  /// is advised.
  [[nodiscard]] bool soft_pressure() const;

  /// Best eviction victim among resident objects passing `evictable`,
  /// preferring the lowest `priority_of` class, then the swapping scheme's
  /// choice within that class. nullopt when nothing can be evicted.
  [[nodiscard]] std::optional<std::uint64_t> pick_victim(
      const std::function<bool(std::uint64_t)>& evictable,
      const std::function<int(std::uint64_t)>& priority_of) const;

  [[nodiscard]] std::size_t in_core_bytes() const { return in_core_bytes_; }
  /// High-watermark of in_core_bytes over the layer's lifetime; the chaos
  /// harness checks it never exceeds the budget by more than the allowed
  /// reload overshoot.
  [[nodiscard]] std::size_t peak_in_core_bytes() const {
    return peak_in_core_bytes_;
  }
  [[nodiscard]] std::size_t resident_count() const { return resident_.size(); }
  [[nodiscard]] std::size_t largest_spilled_bytes() const {
    return largest_spilled_;
  }
  [[nodiscard]] const OocOptions& options() const { return options_; }

 private:
  OocOptions options_;
  storage::EvictionPolicy policy_;
  std::unordered_map<std::uint64_t, std::size_t> resident_;  // key -> bytes
  std::unordered_map<std::uint64_t, std::size_t> spilled_;   // key -> blob
  std::size_t in_core_bytes_ = 0;
  std::size_t peak_in_core_bytes_ = 0;
  std::size_t largest_spilled_ = 0;  // cached max over spilled_
};

}  // namespace mrts::core
