# Empty compiler generated dependencies file for bench_tab7_tbb_gcd.
# This may be replaced when dependencies are built.
