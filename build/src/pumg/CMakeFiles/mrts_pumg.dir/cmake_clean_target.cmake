file(REMOVE_RECURSE
  "libmrts_pumg.a"
)
