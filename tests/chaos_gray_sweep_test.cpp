// Gray-failure seed sweep (ctest label "gray"): twenty seeds of
// degraded-but-Up nodes — slow-disk windows (16x modeled op latency),
// stalling-NIC windows (every frame the victim sends is parked for a few
// steps), and short full stalls — on 2 of 4 nodes, with every mitigation
// on: HealthMonitor scoring + Suspect steering, adaptive per-peer RTO, and
// hedged replica reads. A gray node answers everything late, which is
// exactly what the fail-stop machinery cannot see; the bar is that the run
// neither hangs nor diverges: application state byte-identical to the
// fault-free twin of the same seed, all invariants (including check_gray)
// clean, and a byte-identical seed replay. Run selectively with
// `ctest -L gray`.

#include <gtest/gtest.h>

#include <iostream>
#include <string>

#include "chaos/chaos.hpp"
#include "chaos/workload.hpp"
#include "core/health.hpp"
#include "core/runtime.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "storage/replicated_store.hpp"

namespace mrts::chaos {
namespace {

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

core::ClusterOptions gray_options(bool mitigate) {
  core::ClusterOptions options;
  options.nodes = 4;
  // Tight budget so spill/reload traffic flows on every node — the storage
  // health signal is differenced from spill-device ops.
  options.runtime.ooc.memory_budget_bytes = 24u << 10;
  options.runtime.reliable_net.enabled = true;
  options.spill = core::SpillMedium::kMemory;
  // The mirror is what hedged reads race, and it must exist in BOTH twins
  // so their spill stacks behave identically.
  options.replicate_spills = true;
  options.max_run_time = std::chrono::seconds(120);
  if (mitigate) {
    options.runtime.reliable_net.adaptive_rto = true;
    options.replication.hedged_reads = true;
    // 4x the 50us healthy baseline DegradedFaultPlan charges per op.
    options.replication.hedge_latency_us = 200;
  }
  return options;
}

/// Two of four nodes degraded per seed (disk and NIC victims drawn from the
/// same shuffled cycle, so seeds where they coincide are covered too), plus
/// a couple of short full stalls.
ChaosPlan gray_fault_plan(std::uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.degraded.slow_disk_nodes = 2;
  plan.degraded.slow_disk_ops = 96;
  plan.degraded.slow_nic_nodes = 2;
  plan.degraded.slow_nic_steps = 48;
  plan.degraded.stall_bursts = 2;
  return plan;
}

HopWorkloadOptions gray_workload(std::uint64_t seed) {
  HopWorkloadOptions wl;
  wl.objects_per_node = 4;
  wl.payload_words = 512;  // 4KB payloads against a 24KB budget: spills
  wl.routes = 16;
  wl.route_length = 6;
  wl.migrate_every = 3;
  wl.seed = seed;
  return wl;
}

struct GrayOutcome {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t expected = 0;
  std::uint64_t health_samples = 0;
  std::uint64_t suspects = 0;
  std::uint64_t hedged_reads = 0;
  std::string trace_text;
  std::uint32_t trace_crc = 0;
  InvariantReport invariants;
  bool timed_out = false;
};

GrayOutcome run_gray_config(std::uint64_t seed, bool degraded) {
  ChaosPlan plan = degraded ? gray_fault_plan(seed) : ChaosPlan{.seed = seed};
  Harness harness(plan);
  core::ClusterOptions options = gray_options(/*mitigate=*/degraded);
  harness.instrument(options);
  // The monitor chains over the harness (monitor -> harness) and, attached
  // standalone, becomes the membership view: node_accepting == healthy, so
  // placement and migrate fallback steer around Suspect nodes.
  core::HealthMonitor monitor;
  if (degraded) {
    monitor.instrument(options);
  }
  core::Cluster cluster(options);
  if (degraded) {
    monitor.attach(cluster);
  }
  HopWorkload workload(cluster, gray_workload(seed));
  workload.create_objects();
  workload.inject();
  const auto report = cluster.run();

  GrayOutcome out;
  out.timed_out = report.timed_out;
  out.executed = workload.executed_hops();
  out.expected = workload.expected_hops();
  out.digest = workload.state_digest();
  out.invariants = harness.check(cluster);
  check_gray(cluster, degraded ? &monitor : nullptr, out.invariants);
  out.trace_text = harness.trace().text();
  out.trace_crc = harness.trace().crc();
  out.health_samples = monitor.stats().samples;
  out.suspects = monitor.stats().suspects;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto* rep = dynamic_cast<const storage::ReplicatedStore*>(
        &cluster.node(static_cast<net::NodeId>(i)).spill_backend());
    if (rep != nullptr) {
      out.hedged_reads += rep->replicated_stats().hedged_reads;
    }
  }
  return out;
}

class GraySeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    auto& tr = obs::TraceRecorder::global();
    tr.disable();
    tr.reset();
    tr.enable({.ring_capacity = 1u << 16, .clock = obs::TraceClock::kVirtual});
  }
  void TearDown() override {
    auto& tr = obs::TraceRecorder::global();
    tr.disable();
    if (HasFailure() && obs::TraceRecorder::compiled_in()) {
      const std::string path =
          "gray_fail_seed" + std::to_string(GetParam()) + ".json";
      const auto st = obs::write_chrome_trace(path, tr);
      std::cerr << (st.is_ok() ? "wrote trace artifact " + path
                               : "trace artifact export failed: " +
                                     st.to_string())
                << "\n";
    }
    tr.reset();
  }
};

TEST_P(GraySeedSweep, DegradedNodesYieldByteIdenticalResults) {
  const std::uint64_t seed = GetParam();
  const GrayOutcome clean = run_gray_config(seed, /*degraded=*/false);
  ASSERT_FALSE(clean.timed_out);
  ASSERT_EQ(clean.executed, clean.expected);
  ASSERT_TRUE(clean.invariants.ok()) << clean.invariants.to_string();

  const GrayOutcome gray = run_gray_config(seed, /*degraded=*/true);
  ASSERT_FALSE(gray.timed_out)
      << "seed " << seed << " hung on a degraded-but-Up node";
  // The plan must actually have landed degradation windows.
  EXPECT_EQ(count_substr(gray.trace_text, "slow-disk node="), 2u);
  EXPECT_EQ(count_substr(gray.trace_text, "slow-nic node="), 2u);
  EXPECT_GT(gray.health_samples, 0u);
  EXPECT_EQ(gray.executed, gray.expected);
  EXPECT_TRUE(gray.invariants.ok())
      << "seed " << seed << ":\n"
      << gray.invariants.to_string() << "\ntrace tail:\n"
      << gray.trace_text.substr(gray.trace_text.size() > 2000
                                    ? gray.trace_text.size() - 2000
                                    : 0);
  // The headline: a slow node changes only the schedule, never the result.
  // Hedged reads serve the mirror's byte-identical blobs, the reliable
  // layer absorbs the parked frames, and the HopWorkload digest is
  // placement-independent, so steering away from Suspect nodes cannot show
  // up in it either.
  EXPECT_EQ(gray.digest, clean.digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, GraySeedSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// Detection/mitigation decisions are pure functions of virtual ticks and op
// indices, so a degraded run with every mitigation on replays byte for byte
// — same trace text, same health decisions, same hedges.
TEST(GrayReplay, DegradedRunReplaysByteIdentical) {
  const GrayOutcome a = run_gray_config(5, /*degraded=*/true);
  const GrayOutcome b = run_gray_config(5, /*degraded=*/true);
  ASSERT_GT(a.trace_text.size(), 0u);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.trace_text, b.trace_text);  // byte-identical, not just CRC
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.suspects, b.suspects);
  EXPECT_EQ(a.hedged_reads, b.hedged_reads);
}

// Across the sweep the mitigations must actually engage somewhere: at least
// one seed hedges and at least one drives a node into Suspect. (Per-seed
// windows can be too short to clear the streak thresholds; the sweep as a
// whole must not be a no-op.)
TEST(GraySweepCoverage, MitigationsEngageAcrossSeeds) {
  std::uint64_t suspects = 0;
  std::uint64_t hedges = 0;
  for (std::uint64_t seed = 1; seed <= 20 && (suspects == 0 || hedges == 0);
       ++seed) {
    const GrayOutcome gray = run_gray_config(seed, /*degraded=*/true);
    suspects += gray.suspects;
    hedges += gray.hedged_reads;
  }
  EXPECT_GT(suspects, 0u) << "no seed ever drove a node to Suspect";
  EXPECT_GT(hedges, 0u) << "no seed ever hedged a read";
}

}  // namespace
}  // namespace mrts::chaos
