#include "service/fair_share.hpp"

#include <algorithm>
#include <cmath>

namespace mrts::service {

std::vector<std::size_t> weighted_max_min_shares(
    std::size_t capacity_bytes, const std::vector<std::size_t>& demand_bytes,
    const std::vector<double>& weights) {
  const std::size_t n = demand_bytes.size();
  std::vector<std::size_t> share(n, 0);
  if (n == 0 || capacity_bytes == 0) return share;

  auto weight_of = [&](std::size_t i) {
    return i < weights.size() && weights[i] > 0.0 ? weights[i] : 1.0;
  };

  std::vector<bool> fixed(n, false);
  std::size_t remaining = capacity_bytes;
  // Water-filling: each pass satisfies every tenant whose demand fits under
  // its weight-proportional slice of the remaining capacity, then re-divides
  // what they left on the table. Terminates in <= n passes (every pass fixes
  // at least one tenant or ends the loop).
  while (remaining > 0) {
    double active_weight = 0.0;
    std::size_t active = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!fixed[i] && demand_bytes[i] > 0) {
        active_weight += weight_of(i);
        ++active;
      }
    }
    if (active == 0) break;
    bool any_satisfied = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i] || demand_bytes[i] == 0) continue;
      const double slice =
          static_cast<double>(remaining) * weight_of(i) / active_weight;
      if (static_cast<double>(demand_bytes[i]) <= slice) {
        share[i] = demand_bytes[i];
        remaining -= share[i];
        fixed[i] = true;
        any_satisfied = true;
      }
    }
    if (any_satisfied) continue;
    // Every remaining demand exceeds its slice: hand out the proportional
    // floors, then spread the integer remainder one byte at a time by index
    // so the split is deterministic.
    std::size_t handed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i] || demand_bytes[i] == 0) continue;
      const auto floor_share = static_cast<std::size_t>(
          static_cast<double>(remaining) * weight_of(i) / active_weight);
      share[i] = std::min(demand_bytes[i], floor_share);
      handed += share[i];
    }
    std::size_t leftover = remaining - handed;
    for (std::size_t i = 0; i < n && leftover > 0; ++i) {
      if (fixed[i] || demand_bytes[i] == 0) continue;
      if (share[i] < demand_bytes[i]) {
        ++share[i];
        --leftover;
      }
    }
    break;
  }
  return share;
}

}  // namespace mrts::service
