#pragma once

// Decorator that adds a modeled device latency (fixed seek cost plus a
// bytes/bandwidth transfer term) to every store/load of an inner backend.
// Used to emulate the paper's cluster-era disks deterministically on fast
// local storage, and to study the runtime's latency tolerance (Tables IV-VI).

#include <atomic>
#include <chrono>
#include <memory>

#include "storage/backend.hpp"
#include "util/timer.hpp"

namespace mrts::storage {

struct DeviceModel {
  /// Per-operation fixed cost (seek + controller).
  std::chrono::microseconds access_latency{0};
  /// Sustained transfer rate; <= 0 disables the transfer term.
  double bandwidth_bytes_per_sec = 0.0;

  [[nodiscard]] std::chrono::nanoseconds cost(std::size_t bytes) const;
};

class LatencyStore final : public StorageBackend {
 public:
  LatencyStore(std::unique_ptr<StorageBackend> inner, DeviceModel model)
      : inner_(std::move(inner)), model_(model) {}

  util::Status store(ObjectKey key, std::span<const std::byte> bytes) override;
  util::Status store(ObjectKey key, std::vector<std::byte>&& bytes) override;
  util::Result<std::vector<std::byte>> load(ObjectKey key) override;
  util::Status erase(ObjectKey key) override { return inner_->erase(key); }
  bool contains(ObjectKey key) const override { return inner_->contains(key); }
  std::size_t count() const override { return inner_->count(); }
  std::uint64_t stored_bytes() const override { return inner_->stored_bytes(); }
  /// Inner stats plus this decorator's modeled cost charged into the
  /// virtual_*_latency_us fields, so health scoring and the stall figures
  /// see the device model without timing real sleeps.
  BackendStats stats() const override;
  void tick(std::uint64_t virtual_now) override { inner_->tick(virtual_now); }

  [[nodiscard]] const DeviceModel& model() const { return model_; }

 private:
  std::unique_ptr<StorageBackend> inner_;
  DeviceModel model_;
  std::atomic<std::uint64_t> virtual_store_us_{0};
  std::atomic<std::uint64_t> virtual_load_us_{0};
};

}  // namespace mrts::storage
