#include "chaos/chaos.hpp"

#include <algorithm>

#include "util/format.hpp"
#include "util/rng.hpp"

namespace mrts::chaos {
namespace {

// Domain-separation constants so each consumer of the master seed draws
// from an independent stream.
constexpr std::uint64_t kSchedDomain = 0x736368656475ull;   // "schedu"
constexpr std::uint64_t kNetDomain = 0x6e6574ull;           // "net"
constexpr std::uint64_t kStorageDomain = 0x7374726full;     // "stor"
constexpr std::uint64_t kPauseDomain = 0x7061757365ull;     // "pause"
constexpr std::uint64_t kBlackoutDomain = 0x626c61636bull;  // "black"
constexpr std::uint64_t kMembershipDomain = 0x6d656d62ull;  // "memb"
constexpr std::uint64_t kGrayDomain = 0x67726179ull;        // "gray"

std::uint64_t derive(std::uint64_t seed, std::uint64_t domain) {
  std::uint64_t s = seed ^ domain;
  return util::splitmix64(s);
}

}  // namespace

Harness::Harness(ChaosPlan plan) : plan_(std::move(plan)) {
  pauses_ = plan_.pauses;
}

std::vector<core::MembershipEventSpec> derive_membership_schedule(
    const MembershipFaultPlan& plan, std::uint64_t seed, std::size_t nodes) {
  std::vector<core::MembershipEventSpec> events = plan.events;
  const std::size_t wanted = plan.random_kills + plan.random_drains;
  if (nodes > 1 && wanted > 0) {
    util::Rng rng(derive(seed, kMembershipDomain));
    // Victims without replacement, never node 0: the workload drivers anchor
    // their roots and result objects there.
    std::vector<net::NodeId> victims;
    victims.reserve(nodes - 1);
    for (std::size_t i = 1; i < nodes; ++i) {
      victims.push_back(static_cast<net::NodeId>(i));
    }
    for (std::size_t i = victims.size(); i > 1; --i) {
      std::swap(victims[i - 1], victims[rng.below(i)]);
    }
    const std::uint64_t horizon =
        std::max<std::uint64_t>(plan.event_horizon_steps, 1);
    std::size_t vi = 0;
    for (std::size_t k = 0; k < plan.random_drains && vi < victims.size();
         ++k) {
      events.push_back(
          core::MembershipEventSpec{.step = 1 + rng.below(horizon),
                              .kind = core::MembershipEventSpec::Kind::kDrain,
                              .node = victims[vi++]});
    }
    for (std::size_t k = 0; k < plan.random_kills && vi < victims.size();
         ++k) {
      const net::NodeId node = victims[vi++];
      const std::uint64_t at = 1 + rng.below(horizon);
      events.push_back(core::MembershipEventSpec{
          .step = at, .kind = core::MembershipEventSpec::Kind::kKill, .node = node});
      const std::uint64_t lo = std::min(plan.rejoin_delay_min,
                                        plan.rejoin_delay_max);
      const std::uint64_t hi = std::max(plan.rejoin_delay_min,
                                        plan.rejoin_delay_max);
      // Every kill is paired with a rejoin: the run must end at full
      // strength (minus drained nodes) so parked traffic always drains.
      events.push_back(
          core::MembershipEventSpec{.step = at + lo + rng.below(hi - lo + 1),
                              .kind = core::MembershipEventSpec::Kind::kRejoin,
                              .node = node});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const core::MembershipEventSpec& a,
                      const core::MembershipEventSpec& b) {
                     return a.step < b.step;
                   });
  return events;
}

bool Harness::storage_plan_active(const storage::FaultPlan& plan) {
  return plan.store_failure_rate > 0.0 || plan.load_failure_rate > 0.0 ||
         plan.corruption_rate > 0.0 || plan.torn_write_rate > 0.0 ||
         plan.latency_spike_rate > 0.0 || !plan.schedule.empty();
}

void Harness::instrument(core::ClusterOptions& options) {
  options.deterministic = true;
  options.det_seed = derive(plan_.seed, kSchedDomain);
  options.step_observer = this;
  options.fabric_observer = this;

  // Gray-failure derivation: victims from a seeded shuffle of 1..N-1 (node
  // 0 anchors workload roots), then slow-disk windows, stalling-NIC windows,
  // and stall bursts, in that fixed draw order. Everything lands in plan
  // structures that consume no RNG at run time, so the run replays byte for
  // byte and the other chaos streams are untouched.
  net::NetFaultPlan net = plan_.net;
  if (plan_.degraded.any() && options.nodes > 1) {
    const DegradedFaultPlan& g = plan_.degraded;
    util::Rng rng(derive(plan_.seed, kGrayDomain));
    std::vector<net::NodeId> victims;
    victims.reserve(options.nodes - 1);
    for (std::size_t i = 1; i < options.nodes; ++i) {
      victims.push_back(static_cast<net::NodeId>(i));
    }
    for (std::size_t i = victims.size(); i > 1; --i) {
      std::swap(victims[i - 1], victims[rng.below(i)]);
    }
    std::size_t vi = 0;  // shared cycle: a node can be sick on both axes
    options.degraded_storage.assign(options.nodes,
                                    storage::DegradedPlan{.base_op_us =
                                                              g.base_op_us});
    for (std::size_t k = 0; k < g.slow_disk_nodes; ++k) {
      const net::NodeId node = victims[vi++ % victims.size()];
      storage::DegradedWindow w;
      w.begin_op = 1 + rng.below(
          std::max<std::uint64_t>(g.slow_disk_horizon_ops, 1));
      w.end_op = w.begin_op + std::max<std::uint64_t>(g.slow_disk_ops, 1);
      w.inflation = g.slow_disk_inflation;
      options.degraded_storage[node].windows.push_back(w);
      trace_.note(util::format("slow-disk node={} ops=[{},{}) x{}", node,
                               w.begin_op, w.end_op, w.inflation));
    }
    for (std::size_t k = 0; k < g.slow_nic_nodes; ++k) {
      const net::NodeId node = victims[vi++ % victims.size()];
      net::NetFaultPlan::DegradedLink w;
      w.node = node;
      w.begin_step = 1 + rng.below(
          std::max<std::uint64_t>(g.slow_nic_horizon_steps, 1));
      w.end_step = w.begin_step + std::max<std::uint64_t>(g.slow_nic_steps, 1);
      w.delay_steps = g.slow_nic_delay_steps;
      net.degraded_links.push_back(w);
      trace_.note(util::format("slow-nic node={} steps=[{},{}) hold={}", node,
                               w.begin_step, w.end_step, w.delay_steps));
    }
    for (std::size_t k = 0; k < g.stall_bursts; ++k) {
      PauseWindow w;
      w.node = victims[vi++ % victims.size()];
      w.begin_step =
          1 + rng.below(std::max<std::uint64_t>(g.stall_horizon_steps, 1));
      w.end_step = w.begin_step + std::max<std::uint64_t>(g.stall_steps, 1);
      pauses_.push_back(w);
    }
  }
  if (net.any()) {
    net.seed = derive(plan_.seed, kNetDomain);
    options.net_faults = net;
  }
  // Blackout windows: scheduled FaultWindows with every rate at 1.0, so the
  // device refuses (or garbles) everything for a span of operations. They
  // make the storage plan active even without background rates.
  if (plan_.storage_blackouts > 0) {
    util::Rng rng(derive(plan_.seed, kBlackoutDomain));
    for (std::size_t k = 0; k < plan_.storage_blackouts; ++k) {
      storage::FaultWindow w;
      w.begin_op =
          1 + rng.below(std::max<std::uint64_t>(plan_.blackout_horizon_ops, 1));
      w.end_op = w.begin_op + std::max<std::uint64_t>(plan_.blackout_ops, 1);
      w.store_failure_rate = 1.0;
      w.load_failure_rate = 1.0;
      plan_.storage.schedule.push_back(w);
      trace_.note(util::format("blackout ops=[{},{})", w.begin_op, w.end_op));
    }
  }
  if (storage_plan_active(plan_.storage)) {
    storage::FaultPlan storage = plan_.storage;
    storage.seed = derive(plan_.seed, kStorageDomain);
    storage.observer = [this](const storage::StoreFaultEvent& e) {
      trace_.storage_fault(e);
    };
    options.storage_faults = std::move(storage);
  }

  // Derived pause windows need the node count, so they materialize here.
  if (plan_.random_pauses > 0) {
    util::Rng rng(derive(plan_.seed, kPauseDomain));
    for (std::size_t k = 0; k < plan_.random_pauses; ++k) {
      PauseWindow w;
      w.node = static_cast<net::NodeId>(rng.below(options.nodes));
      w.begin_step =
          1 + rng.below(std::max<std::uint64_t>(plan_.pause_horizon_steps, 1));
      w.end_step = w.begin_step + 1 +
                   rng.below(std::max<std::uint64_t>(plan_.max_pause_steps, 1));
      pauses_.push_back(w);
    }
  }
  trace_.set_step(1);
  for (const PauseWindow& w : pauses_) {
    trace_.note(util::format("pause node={} steps=[{},{})", w.node,
                             w.begin_step, w.end_step));
  }
}

bool Harness::node_runnable(net::NodeId node, std::uint64_t step) {
  for (const PauseWindow& w : pauses_) {
    if (w.node == node && step >= w.begin_step && step < w.end_step) {
      return false;
    }
  }
  return true;
}

void Harness::on_step(std::uint64_t step) { trace_.set_step(step + 1); }

void Harness::on_message(const net::MessageEvent& event) {
  trace_.message(event);
  checker_.on_message(event);
}

InvariantReport Harness::check_transport() const {
  InvariantReport report;
  checker_.finish(report);
  return report;
}

InvariantReport Harness::check(core::Cluster& cluster) const {
  InvariantReport report;
  checker_.finish(report);
  check_directory_convergence(cluster, report);
  check_budget(cluster, plan_.budget_overshoot_bytes, report);
  check_queue_accounting(cluster, report);
  // End-to-end delivery invariants exist only when the reliable layer is on
  // (the raw wire makes no exactly-once/FIFO promise under fault injection).
  if (cluster.size() > 0 &&
      cluster.node(0).options().reliable_net.enabled) {
    check_exactly_once(cluster, report);
    check_fifo_restored(cluster, report);
  }
  return report;
}

}  // namespace mrts::chaos
