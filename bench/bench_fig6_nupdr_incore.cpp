// Figure 6: execution time of the in-core NUPDR vs the MRTS-hosted ONUPDR
// for 1, 2, and 4 PEs on graded problems that fit in memory.

#include "bench_common.hpp"

using namespace mrts;
using namespace mrts::bench;

int main() {
  BenchReport report(
      "fig6_nupdr_incore",
      "Figure 6 — NUPDR vs ONUPDR, in-core graded problems (quadtree)",
      "overhead up to ~18% for 4 and 8 PEs; larger at low PE counts where "
      "the in-core mesher's lean allocator shows (paper: up to 41% at 2 PEs)");

  Table t({"PEs", "elements (10^3)", "NUPDR (s)", "ONUPDR (s)", "overhead"});
  for (std::size_t pes : {1, 2, 4}) {
    for (std::size_t target : {20000, 60000, 120000}) {
      const auto problem = graded_problem(target);
      auto pool =
          tasking::make_pool(tasking::PoolBackend::kWorkStealing, pes);
      const auto incore = pumg::run_nupdr(
          problem, {.leaf_element_budget = 4000}, *pool);
      pumg::OnupdrOocConfig config{
          .cluster = ooc_cluster(std::max<std::size_t>(pes, 1), 1 << 20,
                                 core::SpillMedium::kMemory),
          .leaf_element_budget = 4000,
          .max_concurrent_leaves = 2 * pes};
      const auto ooc = pumg::run_onupdr_ooc(problem, config);
      t.row(pes, incore.elements / 1000, incore.wall_seconds,
            ooc.report.total_seconds,
            util::format("{:.1f}%", 100.0 * (ooc.report.total_seconds -
                                             incore.wall_seconds) /
                                        incore.wall_seconds));
    }
  }
  report.add("nupdr_vs_onupdr", std::move(t));
  return 0;
}
