// Tests for the robust predicates: sign correctness on adversarial
// near-degenerate inputs, consistency under permutation, and agreement with
// high-precision reference evaluation.

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/geom.hpp"
#include "mesh/predicates.hpp"
#include "util/rng.hpp"

namespace mrts::mesh {
namespace {

int sign_of(double x) { return (x > 0) - (x < 0); }

/// Reference orient2d in long double (not exact, but 64-bit mantissa gives
/// a solid cross-check away from the hardest cases).
int orient_ref(const Point2& a, const Point2& b, const Point2& c) {
  const long double det =
      (static_cast<long double>(a.x) - c.x) * (static_cast<long double>(b.y) - c.y) -
      (static_cast<long double>(a.y) - c.y) * (static_cast<long double>(b.x) - c.x);
  return (det > 0) - (det < 0);
}

TEST(Orient2d, BasicOrientations) {
  const Point2 a{0, 0}, b{1, 0}, c{0, 1};
  EXPECT_GT(orient2d(a, b, c), 0.0);
  EXPECT_LT(orient2d(a, c, b), 0.0);
  EXPECT_EQ(orient2d(a, b, Point2{2, 0}), 0.0);
  EXPECT_EQ(orient2d(a, b, Point2{0.5, 0.0}), 0.0);
}

TEST(Orient2d, ExactlyCollinearWithUglyCoordinates) {
  // Points on the line y = x scaled by a value with a long mantissa.
  const double k = 0.1234567890123456789;
  const Point2 a{k, k}, b{2 * k, 2 * k}, c{4 * k, 4 * k};
  // 2*k and 4*k are exact scalings by powers of two: truly collinear.
  EXPECT_EQ(orient2d(a, b, c), 0.0);
}

TEST(Orient2d, TinyPerturbationDetected) {
  // c sits on segment (a, b) except for a one-ulp nudge in y.
  const Point2 a{0.0, 0.0}, b{1.0, 1.0};
  const double y = 0.5;
  const Point2 c_on{0.5, y};
  const Point2 c_up{0.5, std::nextafter(y, 1.0)};
  const Point2 c_dn{0.5, std::nextafter(y, 0.0)};
  EXPECT_EQ(sign_of(orient2d(a, b, c_on)), 0);
  EXPECT_EQ(sign_of(orient2d(a, b, c_up)), 1);
  EXPECT_EQ(sign_of(orient2d(a, b, c_dn)), -1);
}

TEST(Orient2d, AntisymmetryAndRotationInvariance) {
  util::Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const Point2 a{rng.uniform(), rng.uniform()};
    const Point2 b{rng.uniform(), rng.uniform()};
    const Point2 c{rng.uniform(), rng.uniform()};
    const int s = sign_of(orient2d(a, b, c));
    EXPECT_EQ(sign_of(orient2d(b, c, a)), s);
    EXPECT_EQ(sign_of(orient2d(c, a, b)), s);
    EXPECT_EQ(sign_of(orient2d(b, a, c)), -s);
    EXPECT_EQ(s, orient_ref(a, b, c));
  }
}

TEST(Orient2d, NearDegenerateGridPoints) {
  // Classic predicate torture: points on a tiny grid around a base point,
  // where double arithmetic loses all significance.
  const double base = 12345.6789;
  const double ulp = std::nextafter(base, 2 * base) - base;
  int exact_disagreements = 0;
  for (int i = -4; i <= 4; ++i) {
    for (int j = -4; j <= 4; ++j) {
      const Point2 a{base, base};
      const Point2 b{base + 8 * ulp, base + 8 * ulp};
      const Point2 c{base + i * ulp, base + j * ulp};
      const int got = sign_of(orient2d(a, b, c));
      // The truth: c relative to the diagonal line through a with slope 1.
      const int want = sign_of(static_cast<double>(j - i));
      if (got != want) ++exact_disagreements;
    }
  }
  EXPECT_EQ(exact_disagreements, 0);
}

TEST(Incircle, BasicInOut) {
  const Point2 a{0, 0}, b{1, 0}, c{0, 1};  // circumcircle center (.5,.5)
  EXPECT_GT(incircle(a, b, c, Point2{0.5, 0.5}), 0.0);
  EXPECT_LT(incircle(a, b, c, Point2{2.0, 2.0}), 0.0);
  EXPECT_EQ(incircle(a, b, c, Point2{1.0, 1.0}), 0.0);  // cocircular corner
}

TEST(Incircle, ExactlyCocircularPoints) {
  // Four points of an axis-aligned square are exactly cocircular.
  const Point2 a{-1, -1}, b{1, -1}, c{1, 1}, d{-1, 1};
  EXPECT_EQ(incircle(a, b, c, d), 0.0);
  // One-ulp inward/outward displacements flip the sign deterministically.
  const Point2 d_in{-std::nextafter(1.0, 0.0), 1.0};
  const Point2 d_out{-std::nextafter(1.0, 2.0), 1.0};
  EXPECT_GT(incircle(a, b, c, d_in), 0.0);
  EXPECT_LT(incircle(a, b, c, d_out), 0.0);
}

TEST(Incircle, SymmetryUnderEvenPermutation) {
  util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    Point2 a{rng.uniform(), rng.uniform()};
    Point2 b{rng.uniform(), rng.uniform()};
    Point2 c{rng.uniform(), rng.uniform()};
    const Point2 d{rng.uniform(), rng.uniform()};
    if (orient2d(a, b, c) < 0) std::swap(b, c);  // need CCW abc
    const int s = sign_of(incircle(a, b, c, d));
    EXPECT_EQ(sign_of(incircle(b, c, a, d)), s);
    EXPECT_EQ(sign_of(incircle(c, a, b, d)), s);
  }
}

TEST(Incircle, AgreesWithDistanceComparison) {
  util::Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    Point2 a{rng.uniform(), rng.uniform()};
    Point2 b{rng.uniform(), rng.uniform()};
    Point2 c{rng.uniform(), rng.uniform()};
    if (orient2d(a, b, c) == 0.0) continue;
    if (orient2d(a, b, c) < 0) std::swap(b, c);
    const auto cc = circumcenter(a, b, c);
    if (!cc) continue;
    const double r2 = dist2(*cc, a);
    // Pick test points clearly inside/outside to dodge rounding of cc.
    const Point2 inside{cc->x, cc->y};
    const Point2 outside{cc->x + 3 * std::sqrt(r2), cc->y};
    EXPECT_GT(incircle(a, b, c, inside), 0.0);
    EXPECT_LT(incircle(a, b, c, outside), 0.0);
  }
}

TEST(Predicates, ExactFallbackIsExercised) {
  const auto before = predicate_exact_fallbacks();
  // Exactly collinear points with non-power-of-two coordinates force the
  // filtered path to give up.
  const Point2 a{0.1, 0.1};
  const Point2 b{0.2, 0.2};
  const Point2 c{0.30000000000000004, 0.30000000000000004};  // 0.1+0.2
  (void)orient2d(a, b, c);
  EXPECT_GT(predicate_exact_fallbacks(), before);
}

// --- geometry helpers --------------------------------------------------------

TEST(Geom, CircumcenterEquidistant) {
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Point2 a{rng.uniform(), rng.uniform()};
    const Point2 b{rng.uniform(), rng.uniform()};
    const Point2 c{rng.uniform(), rng.uniform()};
    const auto cc = circumcenter(a, b, c);
    if (!cc) continue;
    const double da = dist(*cc, a), db = dist(*cc, b), dc = dist(*cc, c);
    EXPECT_NEAR(da, db, 1e-6 * (1.0 + da));
    EXPECT_NEAR(da, dc, 1e-6 * (1.0 + da));
  }
}

TEST(Geom, CircumcenterDegenerateReturnsNullopt) {
  EXPECT_FALSE(circumcenter({0, 0}, {1, 1}, {2, 2}).has_value());
}

TEST(Geom, MinAngleEquilateral) {
  const Point2 a{0, 0}, b{1, 0}, c{0.5, std::sqrt(3.0) / 2};
  EXPECT_NEAR(min_angle_deg(a, b, c), 60.0, 1e-9);
}

TEST(Geom, MinAngleRightIsosceles) {
  EXPECT_NEAR(min_angle_deg({0, 0}, {1, 0}, {0, 1}), 45.0, 1e-9);
}

TEST(Geom, DiametralCircle) {
  const Point2 a{0, 0}, b{2, 0};
  EXPECT_TRUE(in_diametral_circle(a, b, {1.0, 0.5}));
  EXPECT_FALSE(in_diametral_circle(a, b, {1.0, 1.5}));
  EXPECT_FALSE(in_diametral_circle(a, b, {1.0, 1.0}));  // on the circle
}

TEST(Geom, ClipSegmentCases) {
  const Rect r{0, 0, 1, 1};
  // Fully inside.
  auto c1 = clip_segment({0.2, 0.2}, {0.8, 0.8}, r);
  ASSERT_TRUE(c1);
  EXPECT_EQ(c1->first.x, 0.2);
  EXPECT_EQ(c1->second.x, 0.8);
  // Crossing.
  auto c2 = clip_segment({-1, 0.5}, {2, 0.5}, r);
  ASSERT_TRUE(c2);
  EXPECT_NEAR(c2->first.x, 0.0, 1e-12);
  EXPECT_NEAR(c2->second.x, 1.0, 1e-12);
  // Missing entirely.
  EXPECT_FALSE(clip_segment({-1, 2}, {2, 2}, r).has_value());
  // Parallel to an edge, outside.
  EXPECT_FALSE(clip_segment({-0.5, -1}, {-0.5, 2}, r).has_value());
}

TEST(Geom, RectBasics) {
  const Rect r{0, 0, 2, 1};
  EXPECT_TRUE(r.contains({1, 0.5}));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_FALSE(r.contains_strict({0, 0}));
  EXPECT_FALSE(r.contains({3, 0.5}));
  EXPECT_EQ(r.center().x, 1.0);
  const Rect e = r.expanded(0.5);
  EXPECT_EQ(e.xlo, -0.5);
  EXPECT_EQ(e.yhi, 1.5);
}

}  // namespace
}  // namespace mrts::mesh
