#pragma once

// Log-structured spill engine (ROADMAP item 1): a segmented, append-only
// StorageBackend that replaces blob-per-object file traffic with group
// commit. Stores append framed records (storage/segment_log.hpp) into the
// open segment's write buffer; the buffer is committed to the device as ONE
// append — one device op covering many spill stores — when it reaches the
// group-commit thresholds, or on a virtual-tick deadline. An in-memory
// key -> (segment, extent, generation) index serves loads; erases append
// tombstones. Segments seal at a target size and a bounded compaction pass,
// driven from the runtime's control loop via tick() (never a background
// thread, so chaos replay stays byte-identical), rewrites live records into
// the open segment and drops dead generations and superseded tombstones.
//
// Recovery: on open (file mode) every segment file is scanned sequentially;
// intact records up to the first damage are replayed in generation order
// (monotone store-wide), so truncation or a bit flip loses only the damaged
// record and the tail of its own segment. A key whose newest record is lost
// either disappears (kNotFound) or resurfaces at an older generation — the
// runtime's blob-CRC identity check rejects the stale bytes and routes the
// key into the recovery ladder, exactly like any other unreadable blob.
//
// Engine seam: LogStore is a sibling of FileStore/MemStore behind the same
// StorageBackend interface, so ObjectStore, ReplicatedStore, the
// retry/circuit-breaker decorators, and the recovery ladder compose
// unchanged (ClusterOptions::spill = SpillMedium::kSegmentLog).

#include <filesystem>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/backend.hpp"
#include "storage/segment_log.hpp"

namespace mrts::obs {
class Counter;
}  // namespace mrts::obs

namespace mrts::storage {

struct LogStoreOptions {
  /// Segment directory (file mode). The cluster assigns a per-node temp dir
  /// when left empty; single-node tests may pin it to reach the files.
  std::filesystem::path dir;
  /// Keep segments in RAM instead of files. Device-op accounting is
  /// unchanged (a "device op" is a segment-level I/O, whatever the medium),
  /// so chaos twins and unit tests exercise the same policy decisions.
  bool in_memory = false;
  /// Group commit: the open segment's append buffer is committed to the
  /// device as one append once it holds this many bytes ...
  std::size_t group_commit_bytes = 256u << 10;
  /// ... or this many records, whichever comes first.
  std::size_t group_commit_records = 64;
  /// A non-empty buffer older than this many virtual ticks is committed by
  /// tick() even under both thresholds (bounded commit latency).
  std::uint64_t flush_interval_ticks = 4;
  /// Segments seal (and become compaction candidates) at this size.
  std::size_t segment_target_bytes = 4u << 20;
  /// Sealed segments whose dead fraction reaches this ratio are compacted.
  double compact_garbage_ratio = 0.5;
  /// Sealed segments compacted per tick — bounds maintenance work per
  /// control-loop iteration.
  std::size_t compactions_per_tick = 1;
  /// Keep segment files on destruction (crash-point tests reopen them);
  /// default matches FileStore's remove-on-close behavior.
  bool retain_on_close = false;
  /// Scan pre-existing segment files on open and rebuild the index.
  bool recover_on_open = true;
};

/// What the reopen scan found; exposed for the crash-point tests.
struct LogRecoveryStats {
  std::uint64_t segments = 0;          // segment files scanned
  std::uint64_t damaged_segments = 0;  // scans stopped by damage
  std::uint64_t records = 0;           // intact records replayed
};

class LogStore final : public StorageBackend {
 public:
  explicit LogStore(LogStoreOptions options);
  ~LogStore() override;

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  util::Status store(ObjectKey key, std::span<const std::byte> bytes) override;
  util::Result<std::vector<std::byte>> load(ObjectKey key) override;
  util::Status erase(ObjectKey key) override;
  bool contains(ObjectKey key) const override;
  std::size_t count() const override;
  std::uint64_t stored_bytes() const override;
  BackendStats stats() const override;
  void tick(std::uint64_t virtual_now) override;

  /// Commits the open append buffer to the device now (one group commit).
  util::Status flush();

  /// Compacts up to `max_segments` sealed segments whose dead fraction is at
  /// least `min_garbage_ratio` (worst first); returns segments rewritten or
  /// dropped. tick()'s maintenance pass and the tests both funnel through
  /// here.
  std::size_t compact(std::size_t max_segments, double min_garbage_ratio);

  [[nodiscard]] const std::filesystem::path& directory() const {
    return options_.dir;
  }
  [[nodiscard]] std::size_t segment_count() const;
  /// Records sitting in the uncommitted append buffer.
  [[nodiscard]] std::size_t pending_records() const;
  [[nodiscard]] const LogRecoveryStats& recovery_stats() const {
    return recovery_;
  }

 private:
  struct IndexEntry {
    std::uint64_t segment = 0;
    RecordExtent extent;
    std::uint64_t payload_bytes = 0;
    std::uint64_t generation = 0;
  };
  /// A tombstone that must survive compaction: its key is still erased, and
  /// an older put for it may exist in another segment.
  struct Tombstone {
    std::uint64_t segment = 0;
    RecordExtent extent;
    std::uint64_t generation = 0;
  };
  struct Segment {
    std::uint64_t committed_bytes = 0;  // durably appended to the device
    std::uint64_t valid_bytes = 0;      // committed + pending (open segment)
    std::uint64_t live_bytes = 0;       // framed bytes of index-live puts
    std::uint64_t live_records = 0;
    std::uint64_t tomb_bytes = 0;       // framed bytes of kept tombstones
    bool sealed = false;
    std::vector<std::byte> mem;         // in-memory mode: committed contents
  };

  [[nodiscard]] std::filesystem::path path_of(std::uint64_t id) const;
  /// Appends one framed record to the open segment's buffer; may group-
  /// commit and/or seal as thresholds are crossed. Returns the segment the
  /// record landed in and its extent there.
  std::pair<std::uint64_t, RecordExtent> raw_append_locked(
      ObjectKey key, std::uint64_t generation, RecordKind kind,
      std::span<const std::byte> payload);
  util::Status commit_locked();
  void seal_locked();
  void open_new_segment_locked();
  /// Marks the framed bytes of a superseded put dead in its segment.
  void retire_put_locked(const IndexEntry& e);
  void retire_tombstone_locked(const Tombstone& t);
  /// Reads a segment's committed contents (compaction / recovery path).
  [[nodiscard]] util::Result<std::vector<std::byte>> read_committed_locked(
      std::uint64_t id, const Segment& seg);
  std::size_t compact_locked(std::size_t max_segments,
                             double min_garbage_ratio);
  bool compact_segment_locked(std::uint64_t id);
  void recover_locked();

  LogStoreOptions options_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Segment> segments_;  // ordered: recovery replays asc
  std::uint64_t open_id_ = 1;
  std::uint64_t next_id_ = 2;
  std::uint64_t next_gen_ = 1;
  std::vector<std::byte> pending_;  // open segment's uncommitted tail
  std::size_t pending_records_ = 0;
  std::uint64_t pending_since_tick_ = 0;
  std::uint64_t last_tick_ = 0;
  std::unordered_map<ObjectKey, IndexEntry> index_;
  std::unordered_map<ObjectKey, Tombstone> tombstones_;
  std::uint64_t stored_payload_bytes_ = 0;
  BackendStats stats_{};
  LogRecoveryStats recovery_{};
  // Registry-owned observability counters (process lifetime).
  obs::Counter* m_group_commits_;
  obs::Counter* m_segments_sealed_;
  obs::Counter* m_compactions_;
  obs::Counter* m_records_dropped_;
};

}  // namespace mrts::storage
