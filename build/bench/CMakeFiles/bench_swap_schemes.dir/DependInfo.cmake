
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_swap_schemes.cpp" "bench/CMakeFiles/bench_swap_schemes.dir/bench_swap_schemes.cpp.o" "gcc" "bench/CMakeFiles/bench_swap_schemes.dir/bench_swap_schemes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pumg/CMakeFiles/mrts_pumg.dir/DependInfo.cmake"
  "/root/repo/build/src/jobsim/CMakeFiles/mrts_jobsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mrts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mrts_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/mrts_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mrts_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/tasking/CMakeFiles/mrts_tasking.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
