#include "core/cluster.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"
#include "storage/file_store.hpp"
#include "storage/latency_store.hpp"
#include "storage/mem_store.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace mrts::core {
namespace {

std::unique_ptr<storage::StorageBackend> make_spill_backend(
    const ClusterOptions& options, NodeId node,
    storage::RemoteMemoryPool* remote_pool) {
  std::unique_ptr<storage::StorageBackend> base;
  switch (options.spill) {
    case SpillMedium::kFile:
      base = std::make_unique<storage::FileStore>(storage::make_temp_spill_dir(
          options.spill_tag + "-n" + std::to_string(node)));
      break;
    case SpillMedium::kMemory:
      base = std::make_unique<storage::MemStore>();
      break;
    case SpillMedium::kRemoteMemory:
      base = remote_pool->backend_for(node);
      break;
    case SpillMedium::kSegmentLog: {
      storage::LogStoreOptions lopts = options.log_store;
      if (lopts.dir.empty() && !lopts.in_memory) {
        lopts.dir = storage::make_temp_spill_dir(
            options.spill_tag + "-seg-n" + std::to_string(node));
      }
      base = std::make_unique<storage::LogStore>(std::move(lopts));
      break;
    }
  }
  const bool modeled = options.disk_model.access_latency.count() > 0 ||
                       options.disk_model.bandwidth_bytes_per_sec > 0.0;
  if (modeled) {
    base = std::make_unique<storage::LatencyStore>(std::move(base),
                                                   options.disk_model);
  }
  if (node < options.degraded_storage.size() &&
      options.degraded_storage[node].base_op_us > 0) {
    // Between the device model and the fault injector: a degraded device is
    // still the same device, just slower — and being under the replicated
    // mirror is what lets a hedged read skip it.
    storage::DegradedPlan plan = options.degraded_storage[node];
    plan.tag = node;
    base = std::make_unique<storage::DegradedStore>(std::move(base),
                                                    std::move(plan));
  }
  if (options.storage_faults.has_value()) {
    storage::FaultPlan plan = *options.storage_faults;
    // Derive a distinct stream per node so one shared plan does not fail
    // the same op index on every node in lockstep.
    std::uint64_t s = plan.seed + node;
    plan.seed = util::splitmix64(s);
    plan.tag = node;
    base = std::make_unique<storage::FaultStore>(std::move(base),
                                                 std::move(plan));
  }
  if (options.replicate_spills) {
    // Outermost, above the fault injector: faults hit only the primary, the
    // mirror plays the healthy replica.
    storage::ReplicatedStoreOptions ropts = options.replication;
    ropts.tag = node;
    base = std::make_unique<storage::ReplicatedStore>(
        std::move(base), std::make_unique<storage::MemStore>(), ropts);
  }
  return base;
}

std::vector<BusyTimes> busy_snapshot(
    const std::vector<std::unique_ptr<Runtime>>& runtimes) {
  std::vector<BusyTimes> out(runtimes.size());
  for (std::size_t i = 0; i < runtimes.size(); ++i) {
    const auto& c = runtimes[i]->counters();
    out[i] = {c.comp_time.seconds(), c.comm_time.seconds(),
              c.disk_time.seconds()};
  }
  return out;
}

RunReport finish_report(bool timed_out, double total_seconds,
                        const std::vector<BusyTimes>& before,
                        const std::vector<BusyTimes>& after,
                        const net::FabricStats& fabric_before,
                        const net::FabricStats& fabric_after) {
  std::vector<BusyTimes> delta(before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    delta[i] = {after[i].comp_seconds - before[i].comp_seconds,
                after[i].comm_seconds - before[i].comm_seconds,
                after[i].disk_seconds - before[i].disk_seconds};
  }
  RunReport report;
  static_cast<RunBreakdown&>(report) = make_breakdown(total_seconds, delta);
  report.timed_out = timed_out;
  report.fabric.messages_sent =
      fabric_after.messages_sent - fabric_before.messages_sent;
  report.fabric.messages_delivered =
      fabric_after.messages_delivered - fabric_before.messages_delivered;
  report.fabric.bytes_sent =
      fabric_after.bytes_sent - fabric_before.bytes_sent;
  report.fabric.messages_dropped =
      fabric_after.messages_dropped - fabric_before.messages_dropped;
  report.fabric.messages_duplicated =
      fabric_after.messages_duplicated - fabric_before.messages_duplicated;
  report.fabric.messages_delayed =
      fabric_after.messages_delayed - fabric_before.messages_delayed;
  report.fabric.messages_reordered =
      fabric_after.messages_reordered - fabric_before.messages_reordered;
  if (timed_out) {
    MRTS_LOG_ERROR("cluster run timed out after {:.1f}s", total_seconds);
  }
  return report;
}

}  // namespace

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  if (options_.deterministic) {
    // A modeled link gives messages wall-clock deliverability times, which
    // the virtual-time driver cannot reproduce; storage must complete
    // inline and handlers must not race pool workers.
    options_.link = net::LinkModel{};
    options_.runtime.synchronous_storage = true;
    options_.runtime.pool_workers = 1;
  }
  fabric_ = std::make_unique<net::Fabric>(options_.nodes, options_.link);
  if (options_.net_faults.has_value() || options_.fabric_observer != nullptr) {
    fabric_->enable_chaos(options_.net_faults.value_or(net::NetFaultPlan{}),
                          options_.fabric_observer);
  }
  if (options_.spill == SpillMedium::kRemoteMemory) {
    remote_pool_ = std::make_unique<storage::RemoteMemoryPool>(
        options_.nodes, options_.remote_memory_model,
        options_.remote_memory_capacity_bytes);
  }
  runtimes_.reserve(options_.nodes);
  for (std::size_t i = 0; i < options_.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    RuntimeOptions node_options = options_.runtime;
    if (options_.object_checkpoints &&
        node_options.recovery.checkpoint_store == nullptr) {
      node_options.recovery.checkpoint_store =
          std::make_shared<storage::MemStore>();
    }
    runtimes_.push_back(std::make_unique<Runtime>(
        id, fabric_->endpoint(id), registry_,
        make_spill_backend(options_, id, remote_pool_.get()), node_options));
  }
}

Cluster::~Cluster() = default;

void Cluster::ensure_quiesced(const char* what) const {
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error(std::string("mrts: Cluster::") + what +
                           " called while run() is in flight; counters may "
                           "be mid-update — snapshot only at quiescence");
  }
}

std::uint64_t Cluster::global_activity() const {
  std::uint64_t total = fabric_->send_epoch();
  for (const auto& rt : runtimes_) total += rt->activity_epoch();
  return total;
}

bool Cluster::all_idle() const {
  for (const auto& rt : runtimes_) {
    if (!rt->is_idle()) return false;
  }
  return true;
}

void Cluster::maybe_advise_balance() {
  std::size_t hi = 0, lo = 0;
  std::uint64_t hi_load = 0,
                lo_load = std::numeric_limits<std::uint64_t>::max();
  bool found_lo = false;
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    // Down nodes report zero queued work and would always win the lo slot,
    // turning shed advice into a black hole; draining nodes must not
    // receive new placements either.
    if (membership_ != nullptr && !membership_->node_up(id)) continue;
    const std::uint64_t load = runtimes_[i]->queued_messages();
    if (load > hi_load) {
      hi_load = load;
      hi = i;
    }
    if ((membership_ == nullptr || membership_->node_accepting(id)) &&
        load < lo_load) {
      lo_load = load;
      lo = i;
      found_lo = true;
    }
  }
  if (!found_lo) return;
  if (hi != lo &&
      hi_load > options_.balance.imbalance_factor *
                        static_cast<double>(lo_load) +
                    static_cast<double>(options_.balance.slack_messages)) {
    runtimes_[hi]->advise_shed(options_.balance.objects_per_advice,
                               static_cast<NodeId>(lo));
  }
}

RunReport Cluster::run() {
  if (options_.deterministic) return run_deterministic();
  registry_.seal();

  const std::vector<BusyTimes> before = busy_snapshot(runtimes_);
  const net::FabricStats fabric_before = fabric_->stats();

  running_.store(true, std::memory_order_release);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(runtimes_.size());
  for (auto& rt : runtimes_) {
    threads.emplace_back([&stop, runtime = rt.get()] {
      while (!stop.load(std::memory_order_acquire)) {
        if (!runtime->progress_once()) {
          // Idle: yield the (possibly single) CPU to busy nodes.
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    });
  }

  util::WallTimer timer;
  bool timed_out = false;
  std::uint64_t prev_activity = 0;
  bool prev_quiet = false;
  util::WallTimer balance_timer;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    if (timer.seconds() > static_cast<double>(options_.max_run_time.count())) {
      timed_out = true;
      break;
    }
    const bool quiet_now = all_idle() && fabric_->all_delivered();
    const std::uint64_t activity_now = global_activity();
    if (quiet_now && prev_quiet && activity_now == prev_activity) {
      break;  // two consecutive quiet scans with no work created in between
    }
    prev_quiet = quiet_now;
    prev_activity = activity_now;

    // Dynamic load balancing: sample queued work, advise the most loaded
    // node to shed queued objects to the least loaded one.
    if (options_.balance.enabled &&
        balance_timer.elapsed() >= options_.balance.interval) {
      balance_timer.reset();
      maybe_advise_balance();
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  running_.store(false, std::memory_order_release);
  for (auto& rt : runtimes_) rt->flush_stores();
  return finish_report(timed_out, timer.seconds(), before,
                       busy_snapshot(runtimes_), fabric_before,
                       fabric_->stats());
}

RunReport Cluster::run_deterministic() {
  registry_.seal();

  const std::vector<BusyTimes> before = busy_snapshot(runtimes_);
  const net::FabricStats fabric_before = fabric_->stats();

  // Virtual time is the sweep counter. Each sweep visits every node once in
  // a seeded shuffled order; everything runs on this thread, so the whole
  // schedule — and any chaos event trace — is a pure function of the
  // options and det_seed. Wall time is consulted only for the timeout
  // safety valve.
  std::uint64_t seed_state = options_.det_seed;
  util::Rng order_rng(util::splitmix64(seed_state));
  std::vector<std::size_t> order(runtimes_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  util::WallTimer timer;
  bool timed_out = false;
  int quiet_sweeps = 0;
  std::uint64_t step = 0;
  running_.store(true, std::memory_order_release);
  while (quiet_sweeps < 2) {
    ++step;
    if (timer.seconds() > static_cast<double>(options_.max_run_time.count())) {
      timed_out = true;
      break;
    }
    fabric_->advance_step(step);
    // Publish the sweep counter as the trace clock so events recorded under
    // TraceClock::kVirtual line up with the deterministic schedule.
    obs::TraceRecorder::global().set_virtual_time(step);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[order_rng.below(i)]);
    }
    bool did = false;
    for (std::size_t idx : order) {
      const auto id = static_cast<NodeId>(idx);
      if (options_.step_observer != nullptr &&
          !options_.step_observer->node_runnable(id, step)) {
        continue;  // paused: no polling, no handlers, no I/O this step
      }
      did |= runtimes_[idx]->progress_once();
    }
    if (options_.step_observer != nullptr) {
      options_.step_observer->on_step(step);
    }
    if (options_.balance.enabled && step % 64 == 0) maybe_advise_balance();
    // Quiet sweep: nobody worked, nobody holds work, and the fabric has
    // nothing in flight or parked. Two in a row mean global quiescence
    // (a paused node with pending work keeps its idle flag false, so a
    // pause can never be mistaken for termination).
    const bool quiet = !did && all_idle() && fabric_->all_delivered() &&
                       fabric_->held_messages() == 0 &&
                       (options_.step_observer == nullptr ||
                        options_.step_observer->quiescent());
    quiet_sweeps = quiet ? quiet_sweeps + 1 : 0;
  }
  running_.store(false, std::memory_order_release);
  for (auto& rt : runtimes_) rt->flush_stores();
  RunReport report = finish_report(timed_out, timer.seconds(), before,
                                   busy_snapshot(runtimes_), fabric_before,
                                   fabric_->stats());
  report.det_steps = step;
  return report;
}

}  // namespace mrts::core
