// Figure 8: OUPDR on problems far larger than the memory budget — execution
// time must grow near-linearly with problem size (the runtime keeps the
// disk traffic off the critical path).

#include "bench_common.hpp"

using namespace mrts;
using namespace mrts::bench;

int main() {
  BenchReport report(
      "fig8_oupdr_ooc",
      "Figure 8 — OUPDR, out-of-core problem sizes (8x8 grid, 4 nodes, "
      "4 MB per node, file-backed spill)",
      "time grows almost linearly with problem size despite heavy swapping");

  Table t({"elements (10^3)", "time (s)", "us/element", "spills", "loads",
           "spilled MB"});
  std::uint64_t retries = 0, recovered = 0, reinstalled = 0, poisoned = 0;
  for (std::size_t target : {40000, 80000, 160000, 320000}) {
    const auto problem = uniform_problem(target);
    pumg::OupdrOocConfig config{
        .cluster = ooc_cluster(4, 4096, core::SpillMedium::kFile),
        .nx = 8,
        .ny = 8};
    const auto ooc = pumg::run_oupdr_ooc(problem, config);
    t.row(ooc.mesh.elements / 1000, ooc.report.total_seconds,
          1e6 * ooc.report.total_seconds /
              static_cast<double>(ooc.mesh.elements),
          ooc.objects_spilled, ooc.objects_loaded, ooc.bytes_spilled >> 20);
    retries += ooc.storage_retries;
    recovered += ooc.loads_recovered + ooc.checkpoint_recoveries;
    reinstalled += ooc.spills_reinstalled;
    poisoned += ooc.objects_poisoned;
  }
  report.add("scaling", std::move(t));
  // Self-healing storage path activity: a fault-free run must not trip the
  // recovery ladder, so anything nonzero here is a regression signal.
  report.set_meta("storage_retries", std::to_string(retries));
  report.set_meta("loads_recovered", std::to_string(recovered));
  report.set_meta("spills_reinstalled", std::to_string(reinstalled));
  report.set_meta("objects_poisoned", std::to_string(poisoned));
  return 0;
}
