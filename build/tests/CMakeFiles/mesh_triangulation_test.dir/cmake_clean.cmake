file(REMOVE_RECURSE
  "CMakeFiles/mesh_triangulation_test.dir/mesh_triangulation_test.cpp.o"
  "CMakeFiles/mesh_triangulation_test.dir/mesh_triangulation_test.cpp.o.d"
  "mesh_triangulation_test"
  "mesh_triangulation_test.pdb"
  "mesh_triangulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_triangulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
