#include "simnet/fabric.hpp"

#include <cassert>

namespace mrts::net {

Fabric::Fabric(std::size_t node_count, LinkModel link)
    : link_(link), jitter_rng_(link.jitter_seed) {
  assert(node_count > 0);
  endpoints_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    endpoints_.push_back(std::unique_ptr<Endpoint>(
        new Endpoint(*this, static_cast<NodeId>(i))));
  }
}

FabricStats Fabric::stats() const {
  return FabricStats{
      .messages_sent = messages_sent_.load(std::memory_order_relaxed),
      .messages_delivered =
          messages_delivered_.load(std::memory_order_relaxed),
      .bytes_sent = bytes_sent_.load(std::memory_order_relaxed),
  };
}

std::chrono::nanoseconds Fabric::transit_time(std::size_t bytes) {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(link_.latency);
  if (link_.bandwidth_bytes_per_sec > 0.0) {
    ns += std::chrono::nanoseconds(static_cast<std::int64_t>(
        static_cast<double>(bytes) / link_.bandwidth_bytes_per_sec * 1e9));
  }
  if (link_.jitter.count() > 0) {
    std::lock_guard lock(jitter_mutex_);
    ns += std::chrono::nanoseconds(static_cast<std::int64_t>(
        jitter_rng_.uniform() *
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                link_.jitter)
                                .count())));
  }
  return ns;
}

AmHandlerId Endpoint::register_handler(AmHandler handler) {
  std::lock_guard lock(handlers_mutex_);
  handlers_.push_back(std::move(handler));
  return static_cast<AmHandlerId>(handlers_.size() - 1);
}

void Endpoint::send(NodeId dst, AmHandlerId handler,
                    std::vector<std::byte> payload) {
  std::optional<util::ScopedCharge> charge;
  if (comm_time_ != nullptr) charge.emplace(*comm_time_);
  const std::size_t bytes = payload.size();
  fabric_->bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  Endpoint& target = fabric_->endpoint(dst);
  // The send counter must be incremented before the message becomes
  // deliverable so the termination detector can never observe
  // sent == delivered while a message is being handed over.
  fabric_->messages_sent_.fetch_add(1, std::memory_order_acq_rel);
  target.enqueue(Incoming{
      .src = id_,
      .handler = handler,
      .payload = std::move(payload),
      .deliverable_at = util::Clock::now() + fabric_->transit_time(bytes),
  });
}

void Endpoint::enqueue(Incoming msg) {
  std::lock_guard lock(mutex_);
  inbox_.push_back(std::move(msg));
}

std::size_t Endpoint::poll() {
  std::size_t delivered = 0;
  for (;;) {
    Incoming msg;
    {
      std::lock_guard lock(mutex_);
      if (inbox_.empty()) break;
      if (inbox_.front().deliverable_at > util::Clock::now()) break;
      msg = std::move(inbox_.front());
      inbox_.pop_front();
    }
    AmHandler* handler = nullptr;
    {
      std::lock_guard lock(handlers_mutex_);
      assert(msg.handler < handlers_.size());
      handler = &handlers_[msg.handler];
    }
    {
      std::optional<util::ScopedCharge> charge;
      if (comm_time_ != nullptr) charge.emplace(*comm_time_);
      util::ByteReader reader(msg.payload);
      (*handler)(msg.src, reader);
    }
    // Delivered only after the handler ran: a handler that enqueues local
    // work does so before the detector can see this message as consumed.
    fabric_->messages_delivered_.fetch_add(1, std::memory_order_acq_rel);
    ++delivered;
  }
  return delivered;
}

bool Endpoint::inbox_empty() const {
  std::lock_guard lock(mutex_);
  return inbox_.empty();
}

}  // namespace mrts::net
