#pragma once

// Byte-oriented serialization archives used by the MRTS storage layer and by
// mobile-object (de)serialization. Writers append into a growable byte
// buffer; readers consume a read-only view. All multi-byte values are stored
// in native byte order: archives are exchanged only between simulated nodes
// of one process, never across machines.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mrts::util {

/// Thrown by ByteReader when a read would run past the end of the buffer or
/// when a decoded length field is implausible.
class ArchiveError : public std::runtime_error {
 public:
  explicit ArchiveError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitive values, strings, and containers into a byte buffer.
///
/// Two modes share one write API:
///   - owning (default): writes land in an internal vector, moved out via
///     take(). The classic serialize-then-send staging buffer.
///   - sink: constructed over an external vector (an open batch frame, a
///     group-commit buffer), writes append to it directly — the zero-copy
///     path. take() is invalid in sink mode; the sink owner keeps the bytes.
///
/// Length-prefixed framing that is only known after the fact is handled with
/// write_placeholder<T>() + patch<T>(): reserve the field, write the body,
/// then patch the recorded position. Positions are absolute offsets into the
/// underlying buffer (returned by size()/write_placeholder), so they remain
/// valid across reallocation.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { own_.reserve(reserve_bytes); }
  /// Sink mode: append directly into `sink` (not owned; must outlive the
  /// writer). Existing sink contents are preserved — size() and patch
  /// positions are absolute offsets into the full sink.
  explicit ByteWriter(std::vector<std::byte>& sink) : sink_(&sink) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf().insert(buf().end(), p, p + sizeof(T));
  }

  void write_bytes(std::span<const std::byte> bytes) {
    buf().insert(buf().end(), bytes.begin(), bytes.end());
  }

  void write_string(std::string_view s) {
    write<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf().insert(buf().end(), p, p + s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& v) {
    write<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf().insert(buf().end(), p, p + v.size() * sizeof(T));
  }

  /// Element-wise variant for non-trivially-copyable payloads serialized via
  /// a callable `fn(ByteWriter&, const T&)`.
  template <typename T, typename Fn>
  void write_vector_with(const std::vector<T>& v, Fn&& fn) {
    write<std::uint64_t>(v.size());
    for (const T& item : v) fn(*this, item);
  }

  template <typename K, typename V>
    requires(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>)
  void write_map(const std::unordered_map<K, V>& m) {
    write<std::uint64_t>(m.size());
    for (const auto& [k, v] : m) {
      write(k);
      write(v);
    }
  }

  /// Reserves room for a T written later (a length field framing a body of
  /// as-yet-unknown size); returns its absolute position for patch().
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::size_t write_placeholder() {
    const std::size_t at = buf().size();
    write(T{});
    return at;
  }

  /// Overwrites the T at absolute position `at` (from write_placeholder or a
  /// recorded size()). The position must already be fully written.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void patch(std::size_t at, const T& value) {
    assert(at + sizeof(T) <= buf().size());
    std::memcpy(buf().data() + at, &value, sizeof(T));
  }

  [[nodiscard]] std::size_t size() const { return cbuf().size(); }
  [[nodiscard]] bool empty() const { return cbuf().empty(); }
  [[nodiscard]] std::span<const std::byte> bytes() const { return cbuf(); }
  [[nodiscard]] bool owning() const { return sink_ == nullptr; }

  /// Moves the accumulated buffer out; the writer is left empty and
  /// reusable. Owning mode only — a sink writer never owns its bytes.
  [[nodiscard]] std::vector<std::byte> take() {
    assert(owning() && "take() on a sink-mode ByteWriter");
    return std::exchange(own_, {});
  }

 private:
  [[nodiscard]] std::vector<std::byte>& buf() {
    return sink_ != nullptr ? *sink_ : own_;
  }
  [[nodiscard]] const std::vector<std::byte>& cbuf() const {
    return sink_ != nullptr ? *sink_ : own_;
  }

  std::vector<std::byte>* sink_ = nullptr;  // not owned
  std::vector<std::byte> own_;
};

/// Consumes values from a byte buffer previously produced by ByteWriter.
/// Does not own the underlying storage.
///
/// Every length-prefixed read validates the decoded element count against
/// the bytes actually remaining (scaled by the minimum encoded element size,
/// overflow-free) BEFORE allocating: a corrupt or truncated frame fails with
/// ArchiveError instead of demanding gigabytes from the allocator.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string read_string() {
    const auto n = read_length(1);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Zero-copy variant of read_string: a view into the underlying buffer
  /// (valid only while the buffer lives).
  std::string_view read_string_view() {
    const auto n = read_length(1);
    std::string_view s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto n = read_length(sizeof(T));
    std::vector<T> v(n);
    std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  /// Zero-copy variant of read_vector<std::byte>: wire-compatible with
  /// write_vector (u64 count + raw bytes) but returns a view instead of an
  /// owned copy. The hot dispatch paths use this to hand handlers a window
  /// into the arrival buffer.
  std::span<const std::byte> read_byte_span() {
    const auto n = read_length(1);
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  template <typename T, typename Fn>
  std::vector<T> read_vector_with(Fn&& fn) {
    // Minimum one encoded byte per element: an element count larger than the
    // remaining payload is corrupt no matter how the elements decode.
    const auto n = read_length(1);
    std::vector<T> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(fn(*this));
    return v;
  }

  template <typename K, typename V>
    requires(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>)
  std::unordered_map<K, V> read_map() {
    const auto n = read_length(sizeof(K) + sizeof(V));
    std::unordered_map<K, V> m;
    m.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      K k = read<K>();
      V v = read<V>();
      m.emplace(std::move(k), std::move(v));
    }
    return m;
  }

  std::span<const std::byte> read_bytes(std::size_t n) {
    require(n);
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  /// Reads a u64 element count and proves `n * min_element_bytes` fits in
  /// the REMAINING payload before the caller reserves anything. The division
  /// form is overflow-free where the naive multiplication would wrap and
  /// wave a poisoned count through.
  std::size_t read_length(std::size_t min_element_bytes) {
    const auto n = read<std::uint64_t>();
    assert(min_element_bytes > 0);
    if (n > remaining() / min_element_bytes) {
      throw ArchiveError("archive length field exceeds remaining payload");
    }
    return static_cast<std::size_t>(n);
  }

  void require(std::size_t n) const {
    if (n > bytes_.size() - pos_) {
      throw ArchiveError("archive read past end of buffer");
    }
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace mrts::util
