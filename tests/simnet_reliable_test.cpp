// Unit tests for the end-to-end reliable-delivery layer: sequencing,
// ack/retransmit, receiver-side dedup, and the bounded reorder buffer
// (simnet/reliable.hpp). The fabric underneath is driven manually so each
// protocol rule can be exercised in isolation.

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.hpp"
#include "simnet/fabric.hpp"
#include "simnet/reliable.hpp"
#include "util/archive.hpp"

namespace mrts::net {
namespace {

// A two-node fabric with one ReliableLink per endpoint, both registered in
// the same order so the DATA/ACK handler ids line up on the wire. Received
// payloads (one u64 each) are collected per node in dispatch order.
struct LinkPair {
  explicit LinkPair(ReliableOptions options = fast_options()) : fabric(2) {
    for (int i = 0; i < 2; ++i) {
      links.push_back(std::make_unique<ReliableLink>(
          fabric.endpoint(static_cast<NodeId>(i)), options,
          [this, i](NodeId, AmHandlerId, util::ByteReader& in) {
            received[i].push_back(in.read<std::uint64_t>());
          }));
    }
  }

  // Retransmit after ~1 tick instead of the default ~25, so loss-recovery
  // tests converge in a handful of pump iterations.
  static ReliableOptions fast_options() {
    ReliableOptions o;
    o.enabled = true;
    o.retransmit.base_delay = std::chrono::microseconds(100);
    o.retransmit.max_delay = std::chrono::microseconds(400);
    return o;
  }

  void send(NodeId src, NodeId dst, std::uint64_t value) {
    util::ByteWriter w;
    w.write(value);
    links[src]->send(dst, /*channel=*/0, w.take());
  }

  // Polls and ticks both nodes until the protocol is fully quiescent (or
  // the iteration cap trips — a lost frame that is never recovered).
  [[nodiscard]] bool pump(int max_iterations = 10'000) {
    for (int i = 0; i < max_iterations; ++i) {
      bool did = false;
      for (int n = 0; n < 2; ++n) {
        did |= fabric.endpoint(static_cast<NodeId>(n)).poll() > 0;
        did |= links[n]->on_tick();
      }
      if (!did && fabric.all_delivered() && !links[0]->has_unacked() &&
          !links[1]->has_unacked() && links[0]->rx_buffered() == 0 &&
          links[1]->rx_buffered() == 0) {
        return true;
      }
    }
    return false;
  }

  Fabric fabric;
  std::vector<std::unique_ptr<ReliableLink>> links;
  std::vector<std::uint64_t> received[2];
};

std::vector<std::uint64_t> iota(std::uint64_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = i + 1;
  return v;
}

TEST(ReliableLink, CleanFabricDeliversInOrderWithZeroRetransmits) {
  // Default timing: the first retransmit deadline (~25 ticks) sits above
  // the clean-fabric ack round trip (~2 pump iterations), so nothing is
  // ever retransmitted. The aggressive 1-tick deadline the loss tests use
  // would fire before the first ack arrives.
  LinkPair net(ReliableOptions{.enabled = true});
  for (std::uint64_t v = 1; v <= 20; ++v) net.send(0, 1, v);
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(20));
  EXPECT_EQ(net.links[0]->retransmits(), 0u);
  EXPECT_EQ(net.links[1]->dups_suppressed(), 0u);
  EXPECT_EQ(net.links[1]->dispatch_order_violations(), 0u);
}

TEST(ReliableLink, RetransmitRecoversDroppedFrames) {
  LinkPair net;
  // Every DATA frame sent while step 0 is current is dropped; the
  // retransmissions fire after advance_step(1) ends the window.
  NetFaultPlan plan;
  plan.drop_handler = net.links[0]->data_handler_id();
  plan.drop_handler_windows = {{.begin_step = 0, .end_step = 1}};
  net.fabric.enable_chaos(plan, nullptr);
  for (std::uint64_t v = 1; v <= 5; ++v) net.send(0, 1, v);
  EXPECT_EQ(net.fabric.stats().messages_dropped, 5u);
  EXPECT_TRUE(net.links[0]->has_unacked());
  net.fabric.advance_step(1);
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(5));
  EXPECT_GE(net.links[0]->retransmits(), 5u);
  EXPECT_EQ(net.links[1]->dispatch_order_violations(), 0u);
  EXPECT_FALSE(net.links[0]->has_unacked());
}

TEST(ReliableLink, DuplicatedFramesAreSuppressed) {
  LinkPair net;
  net.fabric.enable_chaos(NetFaultPlan{.dup_rate = 1.0, .seed = 11}, nullptr);
  for (std::uint64_t v = 1; v <= 10; ++v) net.send(0, 1, v);
  ASSERT_TRUE(net.pump());
  // Every wire frame arrived twice, yet each was dispatched exactly once.
  EXPECT_EQ(net.received[1], iota(10));
  EXPECT_GE(net.links[1]->dups_suppressed(), 10u);
  EXPECT_EQ(net.links[1]->dispatch_order_violations(), 0u);
}

TEST(ReliableLink, ReorderBufferFlushesWhenRetransmitFillsTheGap) {
  LinkPair net;
  // Drop only the first DATA send (the window covers the first frame);
  // frames 2..4 arrive ahead of the gap and must be parked, then flushed in
  // order the moment the retransmission of frame 1 lands.
  NetFaultPlan plan;
  plan.drop_handler = net.links[0]->data_handler_id();
  plan.drop_handler_windows = {{.begin_step = 0, .end_step = 1}};
  net.fabric.enable_chaos(plan, nullptr);
  net.send(0, 1, 1);  // dropped
  net.fabric.advance_step(1);
  net.send(0, 1, 2);
  net.send(0, 1, 3);
  net.send(0, 1, 4);
  net.fabric.endpoint(1).poll();
  EXPECT_TRUE(net.received[1].empty());     // all parked behind the gap
  EXPECT_EQ(net.links[1]->rx_buffered(), 3u);
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(4));
  EXPECT_EQ(net.links[1]->rx_buffered(), 0u);
  EXPECT_EQ(net.links[1]->dispatch_order_violations(), 0u);
}

TEST(ReliableLink, FramesBeyondTheReorderWindowAreEvictedThenRecovered) {
  ReliableOptions options = LinkPair::fast_options();
  options.reorder_window = 2;
  LinkPair net(options);
  NetFaultPlan plan;
  plan.drop_handler = net.links[0]->data_handler_id();
  plan.drop_handler_windows = {{.begin_step = 0, .end_step = 1}};
  net.fabric.enable_chaos(plan, nullptr);
  net.send(0, 1, 1);  // dropped
  net.fabric.advance_step(1);
  // next_expected=1, window=2: seq 2 is buffered, seqs 3..5 are refused.
  for (std::uint64_t v = 2; v <= 5; ++v) net.send(0, 1, v);
  net.fabric.endpoint(1).poll();
  EXPECT_EQ(net.links[1]->rx_buffered(), 1u);
  ASSERT_EQ(net.links[1]->rx_flows().size(), 1u);
  EXPECT_EQ(net.links[1]->rx_flows()[0].evicted, 3u);
  // Evicted frames stay unacked at the sender; retransmission finds the
  // window advanced once frame 1 lands, and everything arrives in order.
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(5));
  EXPECT_EQ(net.links[1]->dispatch_order_violations(), 0u);
}

TEST(ReliableLink, FlowSnapshotsBalanceAtQuiescence) {
  LinkPair net;
  net.fabric.enable_chaos(
      NetFaultPlan{.dup_rate = 0.3, .reorder_rate = 0.3, .seed = 3}, nullptr);
  for (std::uint64_t v = 1; v <= 50; ++v) net.send(0, 1, v);
  for (std::uint64_t v = 1; v <= 50; ++v) net.send(1, 0, v);
  ASSERT_TRUE(net.pump());
  for (int n = 0; n < 2; ++n) {
    for (const auto& tx : net.links[n]->tx_flows()) {
      EXPECT_EQ(tx.sent, 50u);
      EXPECT_EQ(tx.acked, 50u);
      EXPECT_EQ(tx.unacked, 0u);
    }
    for (const auto& rx : net.links[n]->rx_flows()) {
      EXPECT_EQ(rx.dispatched, 50u);
      EXPECT_EQ(rx.buffered, 0u);
    }
  }
}

// --- small-message aggregation -------------------------------------------
//
// On the wire one record costs 4 (channel) + 8 (length) + 8 (u64 payload)
// = 20 bytes; the frame header ahead of the records is 12 bytes. The byte-
// threshold test below leans on those exact numbers.

ReliableOptions batched_options(std::size_t max_records,
                                std::size_t max_bytes = 8 * 1024,
                                std::uint64_t flush_ticks = 1) {
  ReliableOptions o = LinkPair::fast_options();
  o.batch_max_records = max_records;
  o.batch_max_bytes = max_bytes;
  o.batch_flush_ticks = flush_ticks;
  return o;
}

TEST(ReliableBatch, FlushOnAnIdleLinkIsANoOp) {
  LinkPair net(batched_options(8));
  EXPECT_FALSE(net.links[0]->flush());
  EXPECT_FALSE(net.links[0]->on_tick());
  EXPECT_EQ(net.fabric.stats().messages_sent, 0u);
  EXPECT_FALSE(net.links[0]->has_unacked());
  EXPECT_EQ(net.links[0]->batches(), 0u);
}

TEST(ReliableBatch, SweepCoalescesIntoOneFrameAndBalances) {
  auto& fill = obs::MetricsRegistry::global().histogram("net.batch_fill");
  const std::uint64_t fill_count_before = fill.count();
  LinkPair net(batched_options(/*max_records=*/100));
  // Mix the copying and the zero-copy send paths inside one batch: both
  // must produce the identical record framing.
  for (std::uint64_t v = 1; v <= 10; ++v) {
    if (v % 2 == 0) {
      net.send(0, 1, v);
    } else {
      net.links[0]->send_with(1, /*channel=*/0, sizeof v,
                              [&](util::ByteWriter& w) { w.write(v); });
    }
  }
  // Nothing hit a threshold: the batch is still open, counted as unacked
  // (quiescence must not close over a parked AM), and nothing is on the
  // wire yet.
  EXPECT_EQ(net.fabric.stats().messages_sent, 0u);
  EXPECT_TRUE(net.links[0]->has_unacked());
  ASSERT_TRUE(net.links[0]->flush());
  EXPECT_EQ(net.fabric.stats().messages_sent, 1u);  // ten AMs, ONE frame
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(10));
  EXPECT_EQ(net.links[0]->batches(), 1u);
  EXPECT_EQ(net.links[0]->ams_sent(), 10u);
  EXPECT_EQ(net.links[0]->zero_copy_bytes(), 5 * sizeof(std::uint64_t));
  EXPECT_EQ(fill.count() - fill_count_before, 1u);
  for (const auto& tx : net.links[0]->tx_flows()) {
    EXPECT_EQ(tx.sent, 1u);
    EXPECT_EQ(tx.ams_sent, 10u);
    EXPECT_EQ(tx.open_records, 0u);
  }
  for (const auto& rx : net.links[1]->rx_flows()) {
    EXPECT_EQ(rx.dispatched, 1u);
    EXPECT_EQ(rx.ams_dispatched, 10u);
  }
}

TEST(ReliableBatch, RecordThresholdFlushesExactlyAtTheBoundary) {
  LinkPair net(batched_options(/*max_records=*/3));
  for (std::uint64_t v = 1; v <= 3; ++v) net.send(0, 1, v);
  EXPECT_EQ(net.fabric.stats().messages_sent, 1u);  // flushed on the 3rd
  net.send(0, 1, 4);
  net.send(0, 1, 5);
  EXPECT_EQ(net.fabric.stats().messages_sent, 1u);  // 2 records: still open
  ASSERT_TRUE(net.links[0]->flush());
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(5));
  EXPECT_EQ(net.links[0]->batches(), 2u);
  EXPECT_EQ(net.links[0]->ams_sent(), 5u);
}

TEST(ReliableBatch, ByteThresholdFlushesExactlyAtTheBoundary) {
  // 40 payload bytes = exactly two 20-byte records: the batch must flush on
  // the 2nd record (>= threshold), never on the 1st.
  LinkPair net(batched_options(/*max_records=*/100, /*max_bytes=*/40));
  for (std::uint64_t v = 1; v <= 5; ++v) net.send(0, 1, v);
  EXPECT_EQ(net.fabric.stats().messages_sent, 2u);  // records 1-2, 3-4
  ASSERT_TRUE(net.links[0]->flush());               // record 5
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(5));
  EXPECT_EQ(net.links[0]->batches(), 3u);
}

TEST(ReliableBatch, OpenBatchAgesOutAfterBatchFlushTicks) {
  LinkPair net(batched_options(/*max_records=*/100, /*max_bytes=*/8 * 1024,
                               /*flush_ticks=*/2));
  net.send(0, 1, 1);
  EXPECT_EQ(net.fabric.stats().messages_sent, 0u);
  EXPECT_FALSE(net.links[0]->on_tick());  // age 1 < 2: still parked
  EXPECT_EQ(net.fabric.stats().messages_sent, 0u);
  EXPECT_TRUE(net.links[0]->on_tick());  // age 2: flushed by the tick path
  EXPECT_EQ(net.fabric.stats().messages_sent, 1u);
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(1));
}

TEST(ReliableBatch, BatchSpanningABlackoutIsDroppedAndRecoveredWhole) {
  LinkPair net(batched_options(/*max_records=*/4));
  NetFaultPlan plan;
  plan.drop_handler = net.links[0]->data_handler_id();
  plan.drop_handler_windows = {{.begin_step = 0, .end_step = 1}};
  net.fabric.enable_chaos(plan, nullptr);
  for (std::uint64_t v = 1; v <= 8; ++v) net.send(0, 1, v);
  // Eight AMs crossed the blackout as TWO frames; both vanish whole.
  EXPECT_EQ(net.fabric.stats().messages_dropped, 2u);
  EXPECT_TRUE(net.links[0]->has_unacked());
  net.fabric.endpoint(1).poll();
  EXPECT_TRUE(net.received[1].empty());
  net.fabric.advance_step(1);
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(8));
  EXPECT_GE(net.links[0]->retransmits(), 2u);
  EXPECT_EQ(net.links[1]->dispatch_order_violations(), 0u);
  for (const auto& rx : net.links[1]->rx_flows()) {
    EXPECT_EQ(rx.ams_dispatched, 8u);
  }
}

TEST(ReliableBatch, EvictedBatchLeavesEveryInnerAmToRetransmission) {
  // Satellite regression for the reorder-window seam: when a BATCH frame is
  // refused beyond the window, every inner AM must stay with the sender's
  // retransmission state — no partial dispatch, no partial loss.
  ReliableOptions options = batched_options(/*max_records=*/2);
  options.reorder_window = 2;
  LinkPair net(options);
  NetFaultPlan plan;
  plan.drop_handler = net.links[0]->data_handler_id();
  plan.drop_handler_windows = {{.begin_step = 0, .end_step = 1}};
  net.fabric.enable_chaos(plan, nullptr);
  net.send(0, 1, 1);
  net.send(0, 1, 2);  // seq 1 (AMs 1-2): dropped whole
  net.fabric.advance_step(1);
  // next_expected=1, window=2: seq 2 (AMs 3-4) parks, seqs 3-5 are refused.
  for (std::uint64_t v = 3; v <= 10; ++v) net.send(0, 1, v);
  net.fabric.endpoint(1).poll();
  EXPECT_TRUE(net.received[1].empty());  // atomically: not one AM leaked
  EXPECT_EQ(net.links[1]->rx_buffered(), 1u);
  ASSERT_EQ(net.links[1]->rx_flows().size(), 1u);
  EXPECT_EQ(net.links[1]->rx_flows()[0].evicted, 3u);
  ASSERT_TRUE(net.pump());
  EXPECT_EQ(net.received[1], iota(10));
  EXPECT_EQ(net.links[1]->dispatch_order_violations(), 0u);
  EXPECT_EQ(net.links[1]->rx_flows()[0].ams_dispatched, 10u);
  EXPECT_EQ(net.links[0]->ams_sent(), 10u);
}

TEST(ReliableBatch, CumulativeAckSamplesRttOncePerFrame) {
  // Ack-accounting golden: five outstanding frames retired by cumulative
  // acks must contribute EXACTLY five net.ack_rtt_us samples — one per
  // frame, measured from its first transmission — no matter how many acks
  // (originals, re-acks for suppressed dups) eventually arrive.
  auto& rtt = obs::MetricsRegistry::global().histogram("net.ack_rtt_us");
  const std::uint64_t samples_before = rtt.count();
  LinkPair net;  // fast_options, batching off: five frames on the wire
  NetFaultPlan plan;
  plan.drop_handler = net.links[0]->ack_handler_id();
  plan.drop_handler_windows = {{.begin_step = 0, .end_step = 1}};
  net.fabric.enable_chaos(plan, nullptr);
  for (std::uint64_t v = 1; v <= 5; ++v) net.send(0, 1, v);
  net.fabric.endpoint(1).poll();           // delivers 5, acks all dropped
  EXPECT_EQ(net.received[1], iota(5));
  EXPECT_EQ(net.fabric.stats().messages_dropped, 5u);
  EXPECT_TRUE(net.links[0]->has_unacked());
  net.fabric.advance_step(1);
  ASSERT_TRUE(net.pump());  // retransmits -> dups suppressed -> re-acked
  EXPECT_FALSE(net.links[0]->has_unacked());
  EXPECT_GE(net.links[1]->dups_suppressed(), 5u);
  EXPECT_EQ(rtt.count() - samples_before, 5u);
}

TEST(ReliableBatch, ChaosGoldenBalancesFabricStatsAndAmAccounting) {
  // FabricChaos stats golden under aggregation: drops, dups, and reorders
  // against batch frames must still zero out at quiescence, at BOTH
  // ledgers — fabric frame copies and inner-AM exactly-once counts.
  LinkPair net(batched_options(/*max_records=*/4));
  net.fabric.enable_chaos(
      NetFaultPlan{
          .drop_rate = 0.1, .dup_rate = 0.3, .reorder_rate = 0.3, .seed = 5},
      nullptr);
  for (std::uint64_t v = 1; v <= 50; ++v) net.send(0, 1, v);
  for (std::uint64_t v = 1; v <= 50; ++v) net.send(1, 0, v);
  net.links[0]->flush();
  net.links[1]->flush();
  ASSERT_TRUE(net.pump());
  // Digest equality with the unbatched twin: same AMs, same order.
  EXPECT_EQ(net.received[0], iota(50));
  EXPECT_EQ(net.received[1], iota(50));
  const FabricStats stats = net.fabric.stats();
  EXPECT_EQ(stats.messages_delivered,
            stats.messages_sent + stats.messages_duplicated -
                stats.messages_dropped);
  for (int n = 0; n < 2; ++n) {
    EXPECT_LT(net.links[n]->batches(), 50u);  // aggregation actually engaged
    for (const auto& tx : net.links[n]->tx_flows()) {
      EXPECT_EQ(tx.ams_sent, 50u);
      EXPECT_EQ(tx.open_records, 0u);
      EXPECT_EQ(tx.unacked, 0u);
    }
    for (const auto& rx : net.links[n]->rx_flows()) {
      EXPECT_EQ(rx.ams_dispatched, 50u);
      EXPECT_EQ(rx.buffered, 0u);
    }
  }
}

}  // namespace
}  // namespace mrts::net
