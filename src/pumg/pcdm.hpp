#pragma once

// PCDM — Parallel Constrained Delaunay Meshing (paper §I.A, [6]).
// Domain decomposition into strips whose shared borders are constrained
// segments. Fully asynchronous: when a strip splits a shared boundary
// subsegment it posts a small message to the neighbouring strip, which
// mirrors the split and continues refining. Messages produced by one
// refinement pass are aggregated into one batch per neighbour (the paper's
// startup-overhead optimization). There is no master and no barrier; the
// run ends at quiescence.

#include "pumg/method.hpp"
#include "tasking/task_pool.hpp"

namespace mrts::pumg {

struct PcdmConfig {
  int strips = 8;
  std::size_t max_turns = 1000000;
};

MeshRunStats run_pcdm(const MeshProblem& problem, const PcdmConfig& config,
                      tasking::TaskPool& pool,
                      std::vector<Subdomain>* out_subs = nullptr,
                      Decomposition* out_decomp = nullptr);

}  // namespace mrts::pumg
