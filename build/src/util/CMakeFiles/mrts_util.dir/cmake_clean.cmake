file(REMOVE_RECURSE
  "CMakeFiles/mrts_util.dir/crc32.cpp.o"
  "CMakeFiles/mrts_util.dir/crc32.cpp.o.d"
  "CMakeFiles/mrts_util.dir/log.cpp.o"
  "CMakeFiles/mrts_util.dir/log.cpp.o.d"
  "CMakeFiles/mrts_util.dir/rng.cpp.o"
  "CMakeFiles/mrts_util.dir/rng.cpp.o.d"
  "CMakeFiles/mrts_util.dir/stats.cpp.o"
  "CMakeFiles/mrts_util.dir/stats.cpp.o.d"
  "libmrts_util.a"
  "libmrts_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrts_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
