// Tests for SVG/OFF export: well-formedness, one path per inside triangle,
// fragment grouping, and error propagation.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "mesh/export.hpp"
#include "mesh/refine.hpp"
#include "storage/file_store.hpp"

namespace mrts::mesh {
namespace {

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = storage::make_temp_spill_dir("svg"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(ExportTest, SvgHasOnePathPerInsideTriangle) {
  Triangulation t = refine_pslg(
      make_unit_square(),
      {.min_angle_deg = 20.0, .size_field = uniform_size(0.2)});
  const auto path = dir_ / "mesh.svg";
  ASSERT_TRUE(write_svg(t, path).is_ok());
  const std::string svg = slurp(path);
  EXPECT_EQ(count_occurrences(svg, "<path "), t.inside_triangles());
  EXPECT_NE(svg.find("<svg "), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST_F(ExportTest, FragmentsGetTheirOwnGroups) {
  Triangulation a = refine_pslg(
      make_rectangle(Rect{0, 0, 1, 1}),
      {.min_angle_deg = 20.0, .size_field = uniform_size(0.3)});
  Triangulation b = refine_pslg(
      make_rectangle(Rect{1, 0, 2, 1}),
      {.min_angle_deg = 20.0, .size_field = uniform_size(0.3)});
  std::vector<CompactMesh> frags{extract_inside(a), extract_inside(b)};
  const auto path = dir_ / "frags.svg";
  ASSERT_TRUE(write_svg(frags, path).is_ok());
  const std::string svg = slurp(path);
  EXPECT_EQ(count_occurrences(svg, "<g "), 2u);
  EXPECT_EQ(count_occurrences(svg, "<path "),
            a.inside_triangles() + b.inside_triangles());
}

TEST_F(ExportTest, OffListsVerticesAndTriangles) {
  Triangulation t = refine_pslg(
      make_unit_square(),
      {.min_angle_deg = 20.0, .size_field = uniform_size(0.4)});
  const auto path = dir_ / "mesh.off";
  ASSERT_TRUE(write_off(t, path).is_ok());
  std::ifstream in(path);
  std::string magic;
  std::size_t nv = 0, nt = 0, ne = 0;
  in >> magic >> nv >> nt >> ne;
  EXPECT_EQ(magic, "OFF");
  EXPECT_EQ(nt, t.inside_triangles());
  EXPECT_GT(nv, 3u);
  // Every face line references valid vertex indices.
  for (std::size_t i = 0; i < nv; ++i) {
    double x, y, z;
    in >> x >> y >> z;
  }
  for (std::size_t i = 0; i < nt; ++i) {
    std::size_t k, v0, v1, v2;
    in >> k >> v0 >> v1 >> v2;
    EXPECT_EQ(k, 3u);
    EXPECT_LT(v0, nv);
    EXPECT_LT(v1, nv);
    EXPECT_LT(v2, nv);
  }
  EXPECT_TRUE(in.good() || in.eof());
}

TEST_F(ExportTest, EmptyExportIsAnError) {
  std::vector<CompactMesh> none;
  EXPECT_FALSE(write_svg(none, dir_ / "x.svg").is_ok());
}

TEST_F(ExportTest, UnwritablePathIsAnError) {
  Triangulation t = Triangulation::conforming(make_unit_square());
  EXPECT_FALSE(write_svg(t, dir_ / "no" / "such" / "dir" / "x.svg").is_ok());
}

}  // namespace
}  // namespace mrts::mesh
