#pragma once

// Shared helpers for the benchmark/reproduction harnesses: the standard
// problems, cluster configurations, and a fixed-width table printer whose
// output mirrors the paper's tables and figure series. Every harness prints
// a `# paper:` line stating the qualitative expectation from the paper so
// EXPERIMENTS.md can record paper-vs-measured side by side.

#include <charconv>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "pumg/method.hpp"
#include "pumg/nupdr.hpp"
#include "pumg/ooc.hpp"
#include "pumg/pcdm.hpp"
#include "pumg/updr.hpp"
#include "util/format.hpp"

namespace mrts::bench {

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("\n==== %s ====\n", title.c_str());
  std::printf("# paper: %s\n", paper.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  template <typename... Args>
  void row(const Args&... args) {
    std::vector<std::string> cells{to_cell(args)...};
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      width[c] = columns_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), s.c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::printf("|");
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
  }

  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      return util::format("{:.2f}", v);
    } else {
      return util::format("{}", v);
    }
  }

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Harness wrapper: prints the usual header/tables on stdout and mirrors
/// everything into a machine-readable `BENCH_<name>.json` in the working
/// directory so sweeps can be diffed and plotted without scraping tables.
/// The JSON is written by write_json() or, failing that, the destructor.
class BenchReport {
 public:
  BenchReport(std::string name, std::string title, std::string paper)
      : name_(std::move(name)),
        title_(std::move(title)),
        paper_(std::move(paper)) {
    print_header(title_, paper_);
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    if (!written_) write_json();
  }

  /// Free-form run metadata (string keyed) carried into the JSON.
  void set_meta(std::string key, std::string value) {
    meta_.emplace_back(std::move(key), std::move(value));
  }

  /// Prints the table and stages it for the JSON dump.
  void add(std::string label, Table table) {
    table.print();
    tables_.emplace_back(std::move(label), std::move(table));
  }

  bool write_json() {
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << obs::json_escape(name_) << "\",\n";
    out << "  \"title\": \"" << obs::json_escape(title_) << "\",\n";
    out << "  \"paper\": \"" << obs::json_escape(paper_) << "\",\n";
    out << "  \"metadata\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    \""
          << obs::json_escape(meta_[i].first) << "\": \""
          << obs::json_escape(meta_[i].second) << "\"";
    }
    out << (meta_.empty() ? "},\n" : "\n  },\n");
    out << "  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const auto& [label, table] = tables_[t];
      out << (t == 0 ? "\n" : ",\n") << "    {\n      \"label\": \""
          << obs::json_escape(label) << "\",\n      \"columns\": [";
      const auto& cols = table.columns();
      for (std::size_t c = 0; c < cols.size(); ++c) {
        out << (c == 0 ? "" : ", ") << "\"" << obs::json_escape(cols[c])
            << "\"";
      }
      out << "],\n      \"rows\": [";
      const auto& rows = table.rows();
      for (std::size_t r = 0; r < rows.size(); ++r) {
        out << (r == 0 ? "\n" : ",\n") << "        [";
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
          out << (c == 0 ? "" : ", ") << cell_json(rows[r][c]);
        }
        out << "]";
      }
      out << (rows.empty() ? "]" : "\n      ]") << "\n    }";
    }
    out << (tables_.empty() ? "]\n" : "\n  ]\n") << "}\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
      return false;
    }
    std::printf("# wrote %s\n", path.c_str());
    return true;
  }

 private:
  /// Cells that parse fully as a number are emitted raw (JSON number);
  /// everything else is a quoted string.
  static std::string cell_json(const std::string& cell) {
    double v = 0.0;
    const char* end = cell.data() + cell.size();
    const auto [ptr, ec] = std::from_chars(cell.data(), end, v);
    if (ec == std::errc() && ptr == end && !cell.empty()) return cell;
    return "\"" + obs::json_escape(cell) + "\"";
  }

  std::string name_;
  std::string title_;
  std::string paper_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, Table>> tables_;
  bool written_ = false;
};

/// The uniform workload (square domain) at a target element count.
inline pumg::MeshProblem uniform_problem(std::size_t target_elements) {
  // elements ~ area / (0.433 h^2) with area 1.
  const double h = std::sqrt(1.0 / (0.433 * static_cast<double>(target_elements)));
  return pumg::MeshProblem{
      mesh::make_unit_square(),
      {.min_angle_deg = 20.0, .size_field = mesh::uniform_size(h)}};
}

/// The graded workload (pipe cross-section) at a target element count.
inline pumg::MeshProblem graded_problem(std::size_t target_elements) {
  const double annulus = 3.14159265 * (1.0 - 0.45 * 0.45);
  // Calibrated so the graded field produces roughly the target count.
  const double h_far =
      std::sqrt(annulus / (0.30 * static_cast<double>(target_elements)));
  return pumg::MeshProblem{
      mesh::make_pipe_section(1.0, 0.45, 48),
      {.min_angle_deg = 20.0,
       .size_field =
           mesh::graded_size({0.0, 1.0}, h_far / 4.0, h_far, 0.15, 1.4)}};
}

/// Cluster options for the OOC runs: in-memory spill by default so results
/// reflect the runtime rather than the host filesystem; pass kFile to
/// exercise real disk I/O.
inline core::ClusterOptions ooc_cluster(std::size_t nodes,
                                        std::size_t budget_kb,
                                        core::SpillMedium medium =
                                            core::SpillMedium::kFile) {
  core::ClusterOptions options;
  options.nodes = nodes;
  options.runtime.ooc.memory_budget_bytes = budget_kb << 10;
  options.spill = medium;
  options.max_run_time = std::chrono::seconds(300);
  return options;
}

}  // namespace mrts::bench
