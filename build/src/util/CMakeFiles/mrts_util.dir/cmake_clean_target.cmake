file(REMOVE_RECURSE
  "libmrts_util.a"
)
