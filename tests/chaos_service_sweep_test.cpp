// Multi-tenant admission-under-faults seed sweep (ctest label "service"):
// twenty seeds of an open-loop Poisson job stream (mixed UPDR/NUPDR/PCDM
// classes across four tenants, memory offered well past cluster capacity)
// driven through the MeshingService over the deterministic chaos driver
// with storage AND network faults injected, the self-healing storage seam
// on, and the reliable-delivery link restoring exactly-once FIFO.
//
// Per seed the run must drain with: zero cross-tenant starvation, zero
// sheds (queues are sized for the stream — shedding instead of queueing
// under pressure is the bug this catches), per-node peak in-core within
// the PHYSICAL budget plus reload overshoot even as the service
// repartitions working budgets underneath, zero tenants over their fair
// share, exact phase accounting end to end, and no unrecovered storage
// failure. One pinned seed also re-runs and must replay its event trace
// byte-identically. On failure the run's chrome trace is exported as
// service_fail_seed<k>.json. Run selectively with `ctest -L service`.

#include <gtest/gtest.h>

#include <iostream>
#include <string>

#include "chaos/chaos.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "service/meshing_service.hpp"

namespace mrts::chaos {
namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kNodeBudget = 96u << 10;

core::ClusterOptions sweep_cluster() {
  core::ClusterOptions options;
  options.nodes = kNodes;
  options.runtime.ooc.memory_budget_bytes = kNodeBudget;
  options.runtime.storage_retry.max_retries = 8;
  options.runtime.storage_retry.base_delay = std::chrono::microseconds(100);
  options.spill = core::SpillMedium::kFile;
  options.spill_tag = "service-sweep";
  // Exactly-once FIFO delivery under the net faults, and the self-healing
  // storage seam under the injected corruption: the service above assumes
  // a lossless substrate and the sweep holds it to that.
  options.runtime.reliable_net.enabled = true;
  options.replicate_spills = true;
  options.object_checkpoints = true;
  options.max_run_time = std::chrono::seconds(120);
  return options;
}

ChaosPlan fault_plan(std::uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.storage.corruption_rate = 0.05;
  plan.storage.torn_write_rate = 0.03;
  plan.storage.load_failure_rate = 0.04;
  plan.net.drop_rate = 0.02;
  plan.net.dup_rate = 0.02;
  plan.net.delay_rate = 0.05;
  plan.net.max_delay_steps = 4;
  return plan;
}

std::vector<jobsim::ServiceJob> sweep_jobs(std::uint64_t seed) {
  jobsim::OpenLoopConfig cfg;
  cfg.horizon_ticks = 24;
  cfg.arrivals_per_tick = 2.0;
  cfg.tenants = 4;
  cfg.max_width = static_cast<int>(kNodes);
  cfg.min_working_set_bytes = 16u << 10;
  cfg.max_working_set_bytes = 48u << 10;
  cfg.min_phases = 2;
  cfg.max_phases = 5;
  cfg.seed = seed * 7919 + 17;
  return jobsim::make_open_loop_jobs(cfg);
}

struct SweepOutcome {
  std::uint64_t completed = 0;
  std::uint64_t submitted = 0;
  std::uint64_t sheds = 0;
  std::uint64_t preempted = 0;
  std::uint64_t expected_hits = 0;
  std::uint64_t executed_hits = 0;
  bool drained = false;
  bool stalled = false;
  bool timed_out = false;
  double oversubscription = 0.0;
  std::vector<TenantWindow> windows;
  InvariantReport invariants;
  std::string trace_text;
  std::uint32_t trace_crc = 0;
};

SweepOutcome run_sweep(std::uint64_t seed) {
  Harness harness(fault_plan(seed));
  core::ClusterOptions options = sweep_cluster();
  harness.instrument(options);
  core::Cluster cluster(options);

  service::ServiceOptions so;
  so.tenants = 4;
  so.max_queue_per_tenant = 0;  // adequate queues: shedding would be a bug
  service::MeshingService svc(cluster, so);

  auto jobs = sweep_jobs(seed);
  SweepOutcome out;
  out.oversubscription =
      jobsim::offered_oversubscription(jobs, kNodes * kNodeBudget);
  svc.run_open_loop(std::move(jobs));

  out.completed = svc.completed_count();
  out.submitted = svc.submitted_count();
  out.sheds = svc.shed_count();
  out.preempted = svc.preempted_count();
  out.expected_hits = svc.expected_phase_hits();
  out.executed_hits = svc.executed_phase_hits();
  out.drained = svc.drained();
  out.stalled = svc.stalled();
  out.windows = svc.tenant_windows();

  // Invariants: the harness's transport/directory/budget checks run against
  // the PHYSICAL per-node budget (rt.options().ooc) — the service's dynamic
  // repartition must never push a node past what the hardware has — plus
  // the storage-recovery ladder and the service-layer tenant checks.
  out.invariants = harness.check(cluster);
  check_recovery(cluster, out.invariants);
  check_no_starvation(out.windows, out.invariants);
  check_tenant_budgets(out.windows, /*expect_drained=*/true, out.invariants);
  out.trace_text = harness.trace().text();
  out.trace_crc = harness.trace().crc();
  return out;
}

class ServiceSeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    auto& tr = obs::TraceRecorder::global();
    tr.disable();
    tr.reset();
    tr.enable({.ring_capacity = 1u << 16, .clock = obs::TraceClock::kVirtual});
  }
  void TearDown() override {
    auto& tr = obs::TraceRecorder::global();
    tr.disable();
    if (HasFailure() && obs::TraceRecorder::compiled_in()) {
      const std::string path =
          "service_fail_seed" + std::to_string(GetParam()) + ".json";
      const auto st = obs::write_chrome_trace(path, tr);
      std::cerr << (st.is_ok() ? "wrote trace artifact " + path
                               : "trace artifact export failed: " +
                                     st.to_string())
                << "\n";
    }
    tr.reset();
  }
};

TEST_P(ServiceSeedSweep, AdmissionUnderFaultsStarvesNoTenant) {
  const std::uint64_t seed = GetParam();
  const SweepOutcome out = run_sweep(seed);

  ASSERT_FALSE(out.stalled) << "seed " << seed << ": service wedged";
  ASSERT_TRUE(out.drained) << "seed " << seed;
  // The stream genuinely oversubscribes memory: admission control, not
  // capacity, is what kept the run inside budget.
  EXPECT_GT(out.oversubscription, 2.0) << "seed " << seed;
  // Never OOM, never shed-instead-of-queue: with unbounded queues every
  // submitted job must eventually complete.
  EXPECT_EQ(out.sheds, 0u) << "seed " << seed;
  EXPECT_EQ(out.completed, out.submitted) << "seed " << seed;
  // Exact phase accounting end to end, through faults and preemptions.
  EXPECT_EQ(out.executed_hits, out.expected_hits) << "seed " << seed;

  EXPECT_TRUE(out.invariants.ok())
      << "seed " << seed << ":\n"
      << out.invariants.to_string() << "\ntrace tail:\n"
      << out.trace_text.substr(
             out.trace_text.size() > 2000 ? out.trace_text.size() - 2000 : 0);
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, ServiceSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// Service ticks sit at deterministic-driver quiescence points, so a
// same-seed re-run — faults, preemptions, repartitions and all — must
// replay its event trace byte-identically.
TEST(ServiceReplay, FaultedOversubscribedRunReplaysByteIdentical) {
  auto& tr = obs::TraceRecorder::global();
  tr.disable();
  tr.reset();
  tr.enable({.ring_capacity = 1u << 16, .clock = obs::TraceClock::kVirtual});
  const SweepOutcome a = run_sweep(7);
  tr.disable();
  tr.reset();
  tr.enable({.ring_capacity = 1u << 16, .clock = obs::TraceClock::kVirtual});
  const SweepOutcome b = run_sweep(7);
  tr.disable();
  tr.reset();
  ASSERT_GT(a.trace_text.size(), 0u);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.trace_text, b.trace_text);  // byte-identical, not just CRC
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.preempted, b.preempted);
  EXPECT_EQ(a.executed_hits, b.executed_hits);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t t = 0; t < a.windows.size(); ++t) {
    EXPECT_EQ(a.windows[t].completed, b.windows[t].completed) << t;
    EXPECT_EQ(a.windows[t].phases_executed, b.windows[t].phases_executed)
        << t;
    EXPECT_EQ(a.windows[t].peak_admitted_bytes, b.windows[t].peak_admitted_bytes)
        << t;
  }
}

}  // namespace
}  // namespace mrts::chaos
