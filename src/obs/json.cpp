#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

namespace mrts::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Result<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return error();
    skip_ws();
    if (pos_ != text_.size()) {
      return util::Status(util::StatusCode::kInvalidArgument,
                          "trailing garbage at offset " + std::to_string(pos_));
    }
    return v;
  }

 private:
  util::Status error() const {
    return {util::StatusCode::kInvalidArgument,
            err_.empty() ? "malformed JSON at offset " + std::to_string(pos_)
                         : err_ + " at offset " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool fail(const char* msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't': return parse_literal("true", JsonValue::boolean(true), out);
      case 'f': return parse_literal("false", JsonValue::boolean(false), out);
      case 'n': return parse_literal("null", JsonValue::null(), out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view lit, JsonValue v, JsonValue& out) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    out = std::move(v);
    return true;
  }

  bool parse_number(JsonValue& out) {
    double d = 0.0;
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, d);
    if (ec != std::errc{} || ptr == begin) return fail("bad number");
    pos_ += static_cast<std::size_t>(ptr - begin);
    out = JsonValue::number(d);
    return true;
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = JsonValue::string(std::move(s));
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("short \\u escape");
          std::uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<std::uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<std::uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<std::uint32_t>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // combined; the exporters only escape control characters).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out) {
    if (!eat('[')) return fail("expected '['");
    out = JsonValue::array();
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item)) return false;
      out.mutable_items().push_back(std::move(item));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    if (!eat('{')) return fail("expected '{'");
    out = JsonValue::object();
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.mutable_members()[std::move(key)] = std::move(value);
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

util::Result<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace mrts::obs
