// Property-based tests of the five swapping schemes (paper §II.E): a
// brute-force reference model mirrors EvictionPolicy's documented
// semantics, and randomized insert/access/erase sequences check that
// victim() always returns an object of maximal scheme badness among the
// evictable set. A second suite checks OocLayer::pick_victim's interplay
// of application priorities and lock (evictable) predicates on top of the
// scheme.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "core/ooc_layer.hpp"
#include "storage/eviction.hpp"
#include "util/rng.hpp"

namespace mrts::storage {
namespace {

// Transparent reference model: same tick/Meta bookkeeping as
// EvictionPolicy, but the victim is found by brute force over all
// (key, badness) pairs, independently of the policy's scan.
class RefModel {
 public:
  explicit RefModel(EvictionScheme scheme) : scheme_(scheme) {}

  void insert(ObjectKey key) {
    ++tick_;
    Meta& m = meta_[key];
    m.last_access = tick_;
    m.count = 0;
    m.aged_score = 0.0;
    m.aged_tick = tick_;
  }

  void access(ObjectKey key) {
    auto it = meta_.find(key);
    if (it == meta_.end()) return;
    ++tick_;
    Meta& m = it->second;
    m.aged_score = aged_at(m, tick_) + 1.0;
    m.aged_tick = tick_;
    m.last_access = tick_;
    ++m.count;
  }

  void erase(ObjectKey key) { meta_.erase(key); }

  [[nodiscard]] bool tracks(ObjectKey key) const {
    return meta_.contains(key);
  }
  [[nodiscard]] std::vector<ObjectKey> keys() const {
    std::vector<ObjectKey> out;
    for (const auto& [k, m] : meta_) out.push_back(k);
    return out;
  }

  [[nodiscard]] double badness(ObjectKey key) const {
    const Meta& m = meta_.at(key);
    switch (scheme_) {
      case EvictionScheme::kLru:
        return -static_cast<double>(m.last_access);
      case EvictionScheme::kMru:
        return static_cast<double>(m.last_access);
      case EvictionScheme::kLu:
        return -(static_cast<double>(m.count) +
                 static_cast<double>(m.last_access) * 1e-12);
      case EvictionScheme::kMu:
        return static_cast<double>(m.count) -
               static_cast<double>(m.last_access) * 1e-12;
      case EvictionScheme::kLfu:
        return -aged_at(m, tick_);
    }
    return 0.0;
  }

  /// Max badness over evictable keys; nullopt if none evictable.
  template <typename Evictable>
  [[nodiscard]] std::optional<double> max_badness(
      const Evictable& evictable) const {
    std::optional<double> best;
    for (const auto& [key, m] : meta_) {
      if (!evictable(key)) continue;
      const double b = badness(key);
      if (!best || b > *best) best = b;
    }
    return best;
  }

 private:
  struct Meta {
    std::uint64_t last_access = 0;
    std::uint64_t count = 0;
    double aged_score = 0.0;
    std::uint64_t aged_tick = 0;
  };

  [[nodiscard]] static double aged_at(const Meta& m, std::uint64_t now) {
    return m.aged_score *
           std::exp2(-static_cast<double>(now - m.aged_tick) / 1024.0);
  }

  EvictionScheme scheme_;
  std::uint64_t tick_ = 0;
  std::map<ObjectKey, Meta> meta_;  // ordered: deterministic iteration
};

constexpr EvictionScheme kAllSchemes[] = {
    EvictionScheme::kLru, EvictionScheme::kLfu, EvictionScheme::kMru,
    EvictionScheme::kMu, EvictionScheme::kLu};

class EvictionProperty : public ::testing::TestWithParam<EvictionScheme> {};

// The core property: after any operation sequence, victim() returns a
// tracked, evictable key whose badness equals the brute-force maximum
// (ties may resolve to any argmax — map iteration order in the policy is
// unspecified).
TEST_P(EvictionProperty, VictimAlwaysHasMaximalBadness) {
  const EvictionScheme scheme = GetParam();
  constexpr std::size_t kKeys = 12;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EvictionPolicy policy(scheme);
    RefModel ref(scheme);
    util::Rng rng(seed * 977 + static_cast<std::uint64_t>(scheme));

    for (int op = 0; op < 400; ++op) {
      const auto key = static_cast<ObjectKey>(rng.below(kKeys));
      switch (rng.below(4)) {
        case 0:
          policy.on_insert(key);
          ref.insert(key);
          break;
        case 1:
          policy.on_access(key);
          ref.access(key);
          break;
        case 2:
          policy.on_erase(key);
          ref.erase(key);
          break;
        default: {
          // Victim query under a random evictability mask.
          const std::uint64_t mask = rng();
          const auto evictable = [&](ObjectKey k) {
            return ((mask >> (k % 64)) & 1u) != 0;
          };
          const auto got = policy.victim(evictable);
          const auto want = ref.max_badness(evictable);
          ASSERT_EQ(got.has_value(), want.has_value())
              << to_string(scheme) << " seed=" << seed << " op=" << op;
          if (got) {
            ASSERT_TRUE(ref.tracks(*got));
            ASSERT_TRUE(evictable(*got));
            ASSERT_EQ(ref.badness(*got), *want)
                << to_string(scheme) << " seed=" << seed << " op=" << op
                << " victim=" << *got;
          }
          break;
        }
      }
      ASSERT_EQ(policy.size(), ref.keys().size());
    }
  }
}

// Directed checks that the schemes actually diverge the way the paper's
// definitions say they should.
TEST(EvictionDirected, SchemesPickOppositeEndsOfAccessHistory) {
  const auto all = [](ObjectKey) { return true; };
  // Keys 1..4 inserted in order, then 2 accessed thrice and 3 once:
  //   recency order (old->new): 1, 4, 3, 2   count order: 1=4=0, 3=1, 2=3.
  auto build = [](EvictionScheme s) {
    EvictionPolicy p(s);
    for (ObjectKey k = 1; k <= 4; ++k) p.on_insert(k);
    p.on_access(2);
    p.on_access(2);
    p.on_access(3);
    p.on_access(2);
    return p;
  };
  EXPECT_EQ(build(EvictionScheme::kLru).victim(all), ObjectKey{1});
  EXPECT_EQ(build(EvictionScheme::kMru).victim(all), ObjectKey{2});
  EXPECT_EQ(build(EvictionScheme::kMu).victim(all), ObjectKey{2});
  // LU ties 1 and 4 at count 0; the 1e-12 recency term prefers older 1.
  EXPECT_EQ(build(EvictionScheme::kLu).victim(all), ObjectKey{1});
  // LFU at this tick distance behaves like LU: zero-score 1 and 4 tie,
  // aged recency is not part of the score, so either zero-count key wins.
  const auto lfu = build(EvictionScheme::kLfu).victim(all);
  ASSERT_TRUE(lfu.has_value());
  EXPECT_TRUE(*lfu == ObjectKey{1} || *lfu == ObjectKey{4});
}

TEST(EvictionDirected, ReinsertResetsCountAndScore) {
  EvictionPolicy p(EvictionScheme::kMu);
  p.on_insert(1);
  p.on_insert(2);
  for (int i = 0; i < 5; ++i) p.on_access(1);
  // 1 is the most-used victim; re-inserting (spill + reload) resets it.
  EXPECT_EQ(p.victim([](ObjectKey) { return true; }), ObjectKey{1});
  p.on_insert(1);
  p.on_access(2);
  EXPECT_EQ(p.victim([](ObjectKey) { return true; }), ObjectKey{2});
}

TEST(EvictionDirected, NoEvictableMeansNoVictim) {
  EvictionPolicy p(EvictionScheme::kLru);
  p.on_insert(1);
  EXPECT_EQ(p.victim([](ObjectKey) { return false; }), std::nullopt);
  p.on_erase(1);
  EXPECT_EQ(p.victim([](ObjectKey) { return true; }), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, EvictionProperty,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace mrts::storage

namespace mrts::core {
namespace {

using storage::EvictionScheme;
using storage::ObjectKey;

// OocLayer::pick_victim layers application priorities over the scheme:
// the victim must always come from the lowest evictable priority class,
// and only within that class defer to the scheme. Locked objects are
// modeled through the evictable predicate, exactly as Runtime uses it.
TEST(OocPickVictimProperty, LowestPriorityClassWinsThenScheme) {
  for (const EvictionScheme scheme :
       {EvictionScheme::kLru, EvictionScheme::kMu, EvictionScheme::kLfu}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      util::Rng rng(seed * 31 + static_cast<std::uint64_t>(scheme));
      OocOptions options;
      options.scheme = scheme;
      OocLayer layer(options);
      storage::RefModel ref(scheme);
      std::map<std::uint64_t, int> priority;   // key -> app priority
      std::map<std::uint64_t, bool> resident;  // mirror of layer residency
      constexpr std::uint64_t kKeys = 10;

      for (int op = 0; op < 300; ++op) {
        const std::uint64_t key = rng.below(kKeys);
        switch (rng.below(5)) {
          case 0: {
            // install (create or reload); OocLayer re-installs count as an
            // access, first installs as an insert.
            if (resident[key]) {
              ref.access(key);
            } else {
              ref.insert(key);
            }
            resident[key] = true;
            layer.on_install(key, 64 + key);
            break;
          }
          case 1:
            layer.on_access(key);
            ref.access(key);
            break;
          case 2:
            layer.on_remove(key);
            ref.erase(key);
            resident[key] = false;
            break;
          case 3:
            priority[key] = static_cast<int>(rng.below(3));
            break;
          default: {
            const std::uint64_t locked_mask = rng();
            const auto evictable = [&](std::uint64_t k) {
              return ((locked_mask >> (k % 64)) & 1u) != 0;
            };
            const auto prio_of = [&](std::uint64_t k) {
              auto it = priority.find(k);
              return it == priority.end() ? 0 : it->second;
            };
            const auto got = layer.pick_victim(evictable, prio_of);

            int lowest = std::numeric_limits<int>::max();
            bool any = false;
            for (const auto& [k, res] : resident) {
              if (!res || !evictable(k)) continue;
              any = true;
              lowest = std::min(lowest, prio_of(k));
            }
            ASSERT_EQ(got.has_value(), any)
                << storage::to_string(scheme) << " seed=" << seed
                << " op=" << op;
            if (got) {
              ASSERT_TRUE(resident[*got]);
              ASSERT_TRUE(evictable(*got));
              ASSERT_EQ(prio_of(*got), lowest)
                  << "victim " << *got << " not in the lowest evictable "
                  << "priority class";
              const auto in_class = [&](std::uint64_t k) {
                return resident.contains(k) && resident.at(k) &&
                       evictable(k) && prio_of(k) == lowest;
              };
              const auto want = ref.max_badness(in_class);
              ASSERT_TRUE(want.has_value());
              ASSERT_EQ(ref.badness(*got), *want)
                  << storage::to_string(scheme) << " seed=" << seed
                  << " op=" << op << " victim=" << *got;
            }
            break;
          }
        }
        ASSERT_EQ(layer.resident_count(),
                  static_cast<std::size_t>(std::count_if(
                      resident.begin(), resident.end(),
                      [](const auto& kv) { return kv.second; })));
      }
    }
  }
}

}  // namespace
}  // namespace mrts::core

namespace mrts::core {
namespace {

// Satellite of the spill pipeline: largest_spilled_bytes() must equal the
// brute-force max over the per-key blob sizes currently on the backend,
// under any interleaving of spills, re-seals at new sizes, and erasures.
// (The old implementation was a monotone high-watermark: it kept the hard
// threshold inflated forever after a one-off huge object left the node.)
TEST(OocLayerLargestSpilled, MatchesBruteForceMaxUnderRandomChurn) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed * 7919);
    OocLayer layer{OocOptions{}};
    std::map<std::uint64_t, std::size_t> ref;  // key -> blob bytes
    for (int op = 0; op < 2000; ++op) {
      const std::uint64_t key = rng.below(24);
      if (rng.below(3) != 0) {
        const auto bytes = static_cast<std::size_t>(1 + rng.below(1u << 16));
        layer.on_spilled(key, bytes);
        ref[key] = bytes;
      } else {
        layer.on_spill_erased(key);
        ref.erase(key);
      }
      std::size_t want = 0;
      for (const auto& [k, b] : ref) want = std::max(want, b);
      ASSERT_EQ(layer.largest_spilled_bytes(), want)
          << "seed=" << seed << " op=" << op;
    }
  }
}

}  // namespace
}  // namespace mrts::core
