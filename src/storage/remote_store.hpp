#pragma once

// Remote memory as out-of-core media (paper conclusion, citing [33]): the
// MRTS storage layer can swap mobile objects into the RAM of peer nodes
// instead of local disk — attractive when the cluster has idle memory and
// the network is faster than the disk.
//
// RemoteMemoryPool models the aggregate remote memory of a cluster: one
// pool object is shared by all simulated nodes, and each node obtains a
// StorageBackend view whose blobs are placed in *other* nodes' partitions
// (deterministically by key). Transfers charge a configurable network cost
// (latency + bytes/bandwidth), standing in for the RDMA put/get a real
// implementation would issue.

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/backend.hpp"
#include "storage/latency_store.hpp"

namespace mrts::storage {

class RemoteMemoryPool {
 public:
  /// `nodes` simulated nodes; per-partition capacity of `capacity_bytes`
  /// (0 = unlimited; a full partition fails stores with kUnavailable).
  /// `transfer` models the network put/get cost.
  RemoteMemoryPool(std::size_t nodes, DeviceModel transfer,
                   std::uint64_t capacity_bytes = 0);

  /// A backend for node `local`: its blobs live in other nodes' partitions.
  /// With a single node there is no peer, so blobs fall back to the local
  /// partition (degenerate but functional).
  std::unique_ptr<StorageBackend> backend_for(std::uint32_t local);

  /// Bytes currently parked in `node`'s partition on behalf of peers.
  [[nodiscard]] std::uint64_t stored_on(std::uint32_t node) const;
  [[nodiscard]] std::size_t nodes() const { return partitions_.size(); }

  // --- operations used by the per-node backend views -----------------------

  util::Status pool_store(std::uint32_t owner, ObjectKey key,
                          std::span<const std::byte> bytes);
  util::Result<std::vector<std::byte>> pool_load(std::uint32_t owner,
                                                 ObjectKey key);
  util::Status pool_erase(std::uint32_t owner, ObjectKey key);

 private:
  struct Partition {
    mutable std::mutex mutex;
    std::unordered_map<ObjectKey, std::vector<std::byte>> blobs;
    std::uint64_t bytes = 0;
  };

  /// Deterministic placement of a key for an owner node (never the owner's
  /// own partition when peers exist).
  [[nodiscard]] std::uint32_t partition_of(std::uint32_t owner,
                                           ObjectKey key) const;

  std::vector<std::unique_ptr<Partition>> partitions_;
  DeviceModel transfer_;
  std::uint64_t capacity_bytes_;
};

}  // namespace mrts::storage
