#pragma once

// Domain decompositions for the three PUMG methods:
//   make_grid     — uniform nx-by-ny cells (UPDR);
//   make_strips   — n vertical strips (PCDM);
//   make_quadtree — adaptive quadtree whose leaves bound the estimated
//                   element count (NUPDR), with T-junction points recorded
//                   so neighbouring leaves of different sizes still share
//                   an identical border discretization.
//
// All decompositions cover the domain's bounding box *expanded by a small
// irrational-ish margin*, so internal cell borders never coincide with
// input geometry (which would create collinear constraint conflicts).

#include <cstdint>
#include <optional>

#include "mesh/refine.hpp"
#include "pumg/subdomain.hpp"

namespace mrts::pumg {

struct CellTopology {
  mesh::Rect rect;
  /// Neighbour cell indices per side (several across quadtree T-junctions).
  std::array<std::vector<std::uint32_t>, 4> neighbors;
  /// Border points this cell must include up front (T-junction corners of
  /// finer neighbours).
  std::vector<mesh::Point2> extra_border_points;
};

struct Decomposition {
  std::vector<CellTopology> cells;

  /// The neighbour that owns the border location `m` across `side` of
  /// `cell`, or nullopt when the border is on the decomposition boundary.
  [[nodiscard]] std::optional<std::uint32_t> neighbor_for(
      std::uint32_t cell, int side, const mesh::Point2& m) const;

  [[nodiscard]] std::size_t size() const { return cells.size(); }
};

/// Default expansion of the bounding box, as a fraction of its larger
/// dimension. Deliberately an "ugly" constant so cut lines stay clear of
/// input features.
inline constexpr double kDefaultMarginFraction = 0.0137042;

Decomposition make_grid(const mesh::Pslg& domain, int nx, int ny,
                        double margin_fraction = kDefaultMarginFraction);

Decomposition make_strips(const mesh::Pslg& domain, int n,
                          double margin_fraction = kDefaultMarginFraction);

/// Splits leaves while the estimated element count (from the size field
/// integrated over the leaf ∩ domain) exceeds `leaf_element_budget`.
Decomposition make_quadtree(const mesh::Pslg& domain,
                            const mesh::SizeField& size_field,
                            std::size_t leaf_element_budget,
                            int max_depth = 10,
                            double margin_fraction = kDefaultMarginFraction);

/// Rough element-count estimate for refining `rect ∩ domain` to the size
/// field (equilateral-area heuristic; used for quadtree construction and
/// load estimates).
double estimate_elements(const mesh::Rect& rect, const mesh::Pslg& domain,
                         const mesh::SizeField& size_field);

}  // namespace mrts::pumg
