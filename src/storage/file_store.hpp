#pragma once

// File-based StorageBackend: one file per object key inside a spill
// directory, with a CRC-32 trailer to detect torn or corrupted writes.
// This is the backend the out-of-core experiments actually swap to.

#include <filesystem>
#include <mutex>
#include <unordered_map>

#include "storage/backend.hpp"

namespace mrts::storage {

class FileStore final : public StorageBackend {
 public:
  /// Creates (or reuses) `dir` as the spill directory. Pre-existing files in
  /// the directory are ignored; keys are tracked per FileStore instance.
  explicit FileStore(std::filesystem::path dir);
  ~FileStore() override;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  util::Status store(ObjectKey key, std::span<const std::byte> bytes) override;
  util::Result<std::vector<std::byte>> load(ObjectKey key) override;
  util::Status erase(ObjectKey key) override;
  bool contains(ObjectKey key) const override;
  std::size_t count() const override;
  std::uint64_t stored_bytes() const override;
  BackendStats stats() const override;

  [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }

  /// Removes all spill files created by this instance.
  void clear();

 private:
  std::filesystem::path path_for(ObjectKey key) const;

  std::filesystem::path dir_;
  mutable std::mutex mutex_;
  std::unordered_map<ObjectKey, std::uint64_t> sizes_;  // key -> payload bytes
  std::uint64_t stored_bytes_ = 0;
  BackendStats stats_{};
};

/// Creates a unique temporary spill directory under the system temp path.
std::filesystem::path make_temp_spill_dir(const std::string& tag);

}  // namespace mrts::storage
