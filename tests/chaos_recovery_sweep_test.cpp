// Recovery seed sweep (ctest label "chaos_recovery"): twenty seeds of a
// HARD fault plan — storage blackout windows (every device op refused for a
// span), background corruption, and torn writes — against the self-healing
// storage path: replicated spills with scrub-on-read, circuit-breaker
// degradation, per-object checkpoints, and retry backoff. Every seed must
// finish with application state byte-identical to the fault-free run of
// the same seed, zero poisoned objects, zero dropped messages, and all
// cross-layer invariants intact. Run selectively with
// `ctest -L chaos_recovery`.

#include <gtest/gtest.h>

#include <iostream>
#include <string>

#include "chaos/chaos.hpp"
#include "chaos/workload.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace mrts::chaos {
namespace {

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

core::ClusterOptions recovery_options() {
  core::ClusterOptions options;
  options.nodes = 4;
  // Tiny budget against the workload's ballast: heavy spilling guaranteed,
  // so the blackout windows land on real device traffic.
  options.runtime.ooc.memory_budget_bytes = 64u << 10;
  options.runtime.storage_retry.max_retries = 8;
  // Nonzero backoff: under the deterministic driver the delays are virtual
  // (accumulated, never slept), so replay stays byte-identical.
  options.runtime.storage_retry.base_delay = std::chrono::microseconds(100);
  // Engage the write-behind budget so blackout windows land on deferred
  // soft-pressure spills too: a failed write-behind store must still ride
  // the recovery ladder (reinstall) without claiming a phantom blob.
  options.runtime.write_behind_max_bytes = 16u << 10;
  options.spill = core::SpillMedium::kMemory;
  options.replicate_spills = true;
  options.replication.breaker_failure_threshold = 3;
  options.replication.breaker_cooldown_ops = 16;
  options.object_checkpoints = true;
  options.max_run_time = std::chrono::seconds(120);
  return options;
}

ChaosPlan hard_fault_plan(std::uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  // Blackouts: spans where the primary device refuses everything — only
  // the mirror and the breaker keep the node alive.
  plan.storage_blackouts = 2;
  plan.blackout_ops = 24;
  plan.blackout_horizon_ops = 256;
  // Background hard faults: corrupted payloads and torn writes are
  // NON-retryable — they must be absorbed by seal checks + the mirror.
  plan.storage.corruption_rate = 0.1;
  plan.storage.torn_write_rate = 0.05;
  plan.storage.load_failure_rate = 0.05;
  plan.net.delay_rate = 0.05;
  plan.net.max_delay_steps = 4;
  return plan;
}

HopWorkloadOptions sweep_workload(std::uint64_t seed) {
  HopWorkloadOptions wl;
  wl.objects_per_node = 4;
  wl.payload_words = 2048;  // 4 x 16 KiB per node against a 64 KiB budget
  wl.routes = 16;
  wl.route_length = 6;
  wl.migrate_every = 3;
  wl.seed = seed;
  return wl;
}

struct SweepOutcome {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t expected = 0;
  std::uint64_t injected_faults = 0;
  std::string trace_text;
  std::uint32_t trace_crc = 0;
  InvariantReport invariants;
  bool timed_out = false;
};

SweepOutcome run_sweep_config(std::uint64_t seed, bool with_faults) {
  ChaosPlan plan = with_faults ? hard_fault_plan(seed) : ChaosPlan{.seed = seed};
  Harness harness(plan);
  core::ClusterOptions options = recovery_options();
  harness.instrument(options);
  core::Cluster cluster(options);
  HopWorkload workload(cluster, sweep_workload(seed));
  workload.create_objects();
  workload.inject();
  const auto report = cluster.run();

  SweepOutcome out;
  out.timed_out = report.timed_out;
  out.executed = workload.executed_hops();
  out.expected = workload.expected_hops();
  out.digest = workload.state_digest();
  out.invariants = harness.check(cluster);
  check_recovery(cluster, out.invariants);
  out.trace_text = harness.trace().text();
  out.trace_crc = harness.trace().crc();
  out.injected_faults = count_substr(out.trace_text, "] disk ");
  return out;
}

class RecoverySeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    auto& tr = obs::TraceRecorder::global();
    tr.disable();
    tr.reset();
    tr.enable({.ring_capacity = 1u << 16, .clock = obs::TraceClock::kVirtual});
  }
  void TearDown() override {
    auto& tr = obs::TraceRecorder::global();
    tr.disable();
    if (HasFailure() && obs::TraceRecorder::compiled_in()) {
      const std::string path =
          "chaos_fail_seed" + std::to_string(GetParam()) + ".json";
      const auto st = obs::write_chrome_trace(path, tr);
      std::cerr << (st.is_ok() ? "wrote trace artifact " + path
                               : "trace artifact export failed: " +
                                     st.to_string())
                << "\n";
    }
    tr.reset();
  }
};

TEST_P(RecoverySeedSweep, HardFaultsAreHealedWithoutDataLoss) {
  const std::uint64_t seed = GetParam();
  const SweepOutcome clean = run_sweep_config(seed, /*with_faults=*/false);
  ASSERT_FALSE(clean.timed_out);
  ASSERT_EQ(clean.executed, clean.expected);
  ASSERT_TRUE(clean.invariants.ok()) << clean.invariants.to_string();

  const SweepOutcome faulted = run_sweep_config(seed, /*with_faults=*/true);
  ASSERT_FALSE(faulted.timed_out);
  EXPECT_GT(faulted.injected_faults, 0u)
      << "seed " << seed << " injected no storage faults; the sweep proves "
      << "nothing — widen the blackout windows";
  EXPECT_EQ(faulted.executed, faulted.expected);
  EXPECT_TRUE(faulted.invariants.ok())
      << "seed " << seed << ":\n"
      << faulted.invariants.to_string() << "\ntrace tail:\n"
      << faulted.trace_text.substr(faulted.trace_text.size() > 2000
                                       ? faulted.trace_text.size() - 2000
                                       : 0);
  // The healed run's application state is byte-identical to the fault-free
  // run: the storage path absorbed every hard fault without losing or
  // rolling back a single object.
  EXPECT_EQ(faulted.digest, clean.digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, RecoverySeedSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// Seed replay must stay byte-identical with retry backoff enabled and hard
// faults firing: breaker transitions, mirror fallbacks, and virtual backoff
// are all pure functions of the schedule.
TEST(RecoveryReplay, HardFaultRunReplaysByteIdentical) {
  const SweepOutcome a = run_sweep_config(7, /*with_faults=*/true);
  const SweepOutcome b = run_sweep_config(7, /*with_faults=*/true);
  ASSERT_GT(a.trace_text.size(), 0u);
  EXPECT_GT(a.injected_faults, 0u);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.trace_text, b.trace_text);  // byte-identical, not just CRC
  EXPECT_EQ(a.digest, b.digest);
}

}  // namespace
}  // namespace mrts::chaos
