#pragma once

// Simulated cluster interconnect. The paper runs MRTS over ARMCI one-sided
// communication on real clusters; here every "node" is a thread inside one
// process and the Fabric carries one-sided active messages between their
// Endpoints. Semantics preserved from the ARMCI/AM model that the MRTS
// control layer depends on:
//   - one-sided: the receiver never posts a receive; a registered handler
//     is invoked when the endpoint makes progress (poll), like a GASNet AM
//     polling engine;
//   - FIFO between any ordered pair of endpoints, no ordering across pairs;
//   - payloads are byte blobs, physically copied between nodes (no sharing),
//     so serialization is exercised exactly as on a real network.
// A LinkModel adds per-message latency plus a bandwidth term, and optional
// seeded jitter, for latency-tolerance experiments.
//
// Chaos mode (enable_chaos): a seeded NetFaultPlan injects message drops,
// duplications, reorderings, and virtual-time delays at send time, and a
// FabricObserver receives one event per transport action. Every logical
// message is stamped with a per-(src,dst)-pair sequence number so invariant
// checkers can verify FIFO order and exactly-once delivery from the event
// stream alone. Delayed messages are parked until advance_step() releases
// them, so delays only make sense under a driver that advances virtual time
// (Cluster's deterministic mode).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/archive.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mrts::net {

using NodeId = std::uint32_t;
using AmHandlerId = std::uint32_t;

struct LinkModel {
  std::chrono::microseconds latency{0};
  double bandwidth_bytes_per_sec = 0.0;  // <= 0 means infinite
  /// Uniform extra delay in [0, jitter] applied per message (seeded).
  std::chrono::microseconds jitter{0};
  std::uint64_t jitter_seed = 1;
};

struct FabricStats {
  /// Logical sends: one per Endpoint::send, regardless of what fault
  /// injection did to the message (a duplicate is still ONE logical send).
  std::uint64_t messages_sent = 0;
  /// Handler invocations: one per inbox copy actually delivered (an injected
  /// duplicate delivers twice, a dropped message never).
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;
  // Chaos-mode fault injections (all zero when chaos is disabled).
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t messages_reordered = 0;
};

/// Virtual-step span [begin_step, end_step) during which a scheduled fault
/// applies — the network-side analogue of storage::FaultWindow, which spans
/// operation indices instead of steps.
struct StepWindow {
  std::uint64_t begin_step = 0;
  std::uint64_t end_step = 0;
};

/// Seeded network fault injection applied to every send while enabled.
/// Rates are independent probabilities evaluated in the order drop,
/// duplicate, delay, reorder (at most one fault per message).
struct NetFaultPlan {
  double drop_rate = 0.0;     // message silently vanishes
  double dup_rate = 0.0;      // message is enqueued twice
  double reorder_rate = 0.0;  // message jumps the destination inbox queue
  double delay_rate = 0.0;    // message is parked for a few virtual steps
  /// Uniform hold duration in [1, max_delay_steps] virtual steps.
  std::uint32_t max_delay_steps = 8;
  /// Deliberate bug injection: every message addressed to this AM handler
  /// is dropped (e.g. location updates, to starve the lazy directory).
  std::optional<AmHandlerId> drop_handler;
  /// Bounds drop_handler to virtual-step windows: with a non-empty list the
  /// handler's messages are dropped only while the driver's current step
  /// falls inside one of them, so a starvation drill can END and recovery
  /// afterward is assertable. Empty = drop forever (the legacy drill).
  std::vector<StepWindow> drop_handler_windows;
  /// Gray failure: a stalling NIC. Every message SENT by `node` while the
  /// driver's step is in [begin_step, end_step) is parked for a FIXED
  /// `delay_steps` — no RNG draw is consumed, so adding windows leaves the
  /// chaos RNG stream (and therefore every existing plan's fault schedule)
  /// byte-identical. Messages are slow, never lost: degradation, not
  /// partition.
  struct DegradedLink {
    NodeId node = 0;
    std::uint64_t begin_step = 0;
    std::uint64_t end_step = 0;
    std::uint32_t delay_steps = 2;
  };
  std::vector<DegradedLink> degraded_links;
  std::uint64_t seed = 1;

  [[nodiscard]] bool any() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || reorder_rate > 0.0 ||
           delay_rate > 0.0 || drop_handler.has_value() ||
           !degraded_links.empty();
  }
};

enum class MsgEventKind : std::uint8_t {
  kSend,
  kDeliver,
  kDrop,
  kDuplicate,
  kDelay,
  kReorder,
};

[[nodiscard]] std::string_view to_string(MsgEventKind kind);

/// One transport-layer action on a logical message. `pair_seq` numbers the
/// messages of each ordered (src,dst) endpoint pair from 1; a duplicated
/// message is delivered twice under the same pair_seq.
struct MessageEvent {
  MsgEventKind kind = MsgEventKind::kSend;
  NodeId src = 0;
  NodeId dst = 0;
  AmHandlerId handler = 0;
  std::uint64_t pair_seq = 0;
  std::uint64_t bytes = 0;
  std::uint64_t release_step = 0;  // kDelay only
};

/// Receives every chaos-mode transport event. Calls are serialized by the
/// fabric's chaos mutex on the send side but delivery events are emitted
/// from the polling thread; implementations must be thread-safe when the
/// fabric is driven by more than one thread.
class FabricObserver {
 public:
  virtual ~FabricObserver() = default;
  virtual void on_message(const MessageEvent& event) = 0;
};

class Fabric;

/// Per-node communication endpoint. poll() drives delivery: it pops due
/// messages from the inbox and invokes the registered handlers on the
/// calling thread. All methods are thread-safe.
class Endpoint {
 public:
  /// Handler receives the source node and a reader over the payload.
  using AmHandler = std::function<void(NodeId src, util::ByteReader& payload)>;

  /// Registers a handler and returns its id. Handler tables must be built
  /// identically on every node (same registration order), mirroring how AM
  /// libraries assign handler indices at init time.
  AmHandlerId register_handler(AmHandler handler);

  /// One-sided send: enqueue payload for `dst` and return immediately.
  void send(NodeId dst, AmHandlerId handler, std::vector<std::byte> payload);

  /// Delivers every due message; returns the number delivered.
  std::size_t poll();

  /// True when the inbox holds no messages (due or in flight).
  [[nodiscard]] bool inbox_empty() const;

  /// Inbox copies touching `peer`: all of them when this endpoint IS the
  /// peer (they are addressed to it), otherwise the ones sent by it.
  [[nodiscard]] std::size_t inbox_involving(NodeId peer) const;

  [[nodiscard]] NodeId id() const { return id_; }

  /// Charges send/deliver busy time to `acc` (may be null to disable).
  void set_comm_accumulator(util::TimeAccumulator* acc) { comm_time_ = acc; }

 private:
  friend class Fabric;
  Endpoint(Fabric& fabric, NodeId id) : fabric_(&fabric), id_(id) {}

  struct Incoming {
    NodeId src;
    AmHandlerId handler;
    std::vector<std::byte> payload;
    util::Clock::time_point deliverable_at;
    std::uint64_t pair_seq = 0;  // stamped in chaos mode, 0 otherwise
  };

  void enqueue(Incoming msg);
  /// Pushes `msg` ahead of everything already queued. Returns true when the
  /// inbox was non-empty, i.e. the message actually displaced another one; a
  /// front-push into an empty inbox is indistinguishable from a plain
  /// delivery and must not be accounted as a reorder.
  bool enqueue_front(Incoming msg);

  Fabric* fabric_;
  NodeId id_;
  mutable std::mutex mutex_;
  std::deque<Incoming> inbox_;
  std::vector<AmHandler> handlers_;  // guarded by handlers_mutex_
  mutable std::mutex handlers_mutex_;
  util::TimeAccumulator* comm_time_ = nullptr;
};

/// Owns the endpoints of one simulated cluster.
class Fabric {
 public:
  explicit Fabric(std::size_t node_count, LinkModel link = {});

  [[nodiscard]] std::size_t node_count() const { return endpoints_.size(); }
  [[nodiscard]] Endpoint& endpoint(NodeId id) { return *endpoints_.at(id); }

  [[nodiscard]] FabricStats stats() const;

  /// Cumulative traffic of one ordered endpoint pair.
  struct PairTraffic {
    NodeId src = 0;
    NodeId dst = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  /// Per-pair traffic matrix, nonzero pairs only, ordered by (src, dst).
  /// Counts sends (before fault injection, like bytes_sent).
  [[nodiscard]] std::vector<PairTraffic> pair_traffic() const;

  /// True when no message copy is in flight: everything enqueued (or parked
  /// by a delay fault) has been handed to its handler. Combined with
  /// per-node idle flags by the runtime's termination detector. Injected
  /// drops never enter the in-flight count, so a lossy fabric still
  /// converges without pretending the dropped message was delivered.
  [[nodiscard]] bool all_delivered() const {
    return in_flight_.load(std::memory_order_acquire) == 0;
  }

  /// Monotone counter of sends; used by the two-phase termination check to
  /// detect activity between its probes.
  [[nodiscard]] std::uint64_t send_epoch() const {
    return messages_sent_.load(std::memory_order_acquire);
  }

  // --- chaos mode ----------------------------------------------------------

  /// Turns on fault injection and/or event observation. Must be called
  /// before any send; `observer` (may be null) is not owned and must outlive
  /// the fabric's traffic.
  void enable_chaos(NetFaultPlan plan, FabricObserver* observer);

  /// Advances virtual time to `step` and releases every delayed message due
  /// at or before it. Called once per sweep by the deterministic driver.
  void advance_step(std::uint64_t step);

  /// Delayed messages currently parked (sent but not yet deliverable).
  [[nodiscard]] std::size_t held_messages() const;

  /// Message copies anywhere in the fabric — parked by a delay fault or
  /// sitting undelivered in an inbox — that were sent by or are addressed
  /// to `node`. A planned drain may only complete when this is zero:
  /// a duplicated or delayed copy that escapes the reliable layer's ack
  /// accounting would otherwise land in the departed node's inbox after it
  /// stopped polling and veto termination forever.
  [[nodiscard]] std::size_t in_flight_involving(NodeId node) const;

 private:
  friend class Endpoint;

  struct Held {
    NodeId dst;
    Endpoint::Incoming msg;
    std::uint64_t release_step;
  };

  std::chrono::nanoseconds transit_time(std::size_t bytes);

  /// Chaos-mode send path: stamps the pair sequence, rolls the fault plan,
  /// and performs the chosen action (drop, duplicate, delay, reorder, or
  /// plain enqueue).
  void chaos_send(NodeId src, NodeId dst, AmHandlerId handler,
                  std::vector<std::byte> payload);

  /// True when drop_handler applies at the current virtual step.
  [[nodiscard]] bool drop_window_active() const;

  void emit(const MessageEvent& event) {
    if (observer_ != nullptr) observer_->on_message(event);
  }

  LinkModel link_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  // n*n send-side traffic matrix, indexed src * n + dst.
  std::vector<std::atomic<std::uint64_t>> pair_messages_;
  std::vector<std::atomic<std::uint64_t>> pair_bytes_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_delivered_{0};
  /// Inbox copies enqueued (or parked by a delay fault) minus handler
  /// invocations — the termination detector's balance. A duplicate adds 2,
  /// a drop adds 0, so sent/delivered stats no longer have to lie to keep
  /// this converging.
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> messages_duplicated_{0};
  std::atomic<std::uint64_t> messages_delayed_{0};
  std::atomic<std::uint64_t> messages_reordered_{0};
  std::mutex jitter_mutex_;
  util::Rng jitter_rng_;

  std::atomic<bool> chaos_enabled_{false};
  NetFaultPlan chaos_plan_;
  FabricObserver* observer_ = nullptr;
  mutable std::mutex chaos_mutex_;  // guards the fields below
  util::Rng chaos_rng_{1};
  std::unordered_map<std::uint64_t, std::uint64_t> pair_seq_;
  std::vector<Held> held_;
  std::uint64_t current_step_ = 0;
};

}  // namespace mrts::net
