#include "service/job_objects.hpp"

namespace mrts::service {

void ServiceJobObject::serialize(util::ByteWriter& out) const {
  out.write(job_id);
  out.write(index);
  out.write_vector(ballast);
  out.write(acc);
  out.write(phase_hits);
}

void ServiceJobObject::deserialize(util::ByteReader& in) {
  job_id = in.read<std::uint64_t>();
  index = in.read<std::uint32_t>();
  ballast = in.read_vector<std::uint64_t>();
  acc = in.read<std::uint64_t>();
  phase_hits = in.read<std::uint64_t>();
}

std::size_t ServiceJobObject::footprint_bytes() const {
  return sizeof(ServiceJobObject) + ballast.size() * sizeof(std::uint64_t);
}

void fill_ballast(ServiceJobObject& obj, std::uint64_t job_seed,
                  std::size_t words) {
  std::uint64_t fill = job_seed ^ (0x9E3779B97F4A7C15ull * (obj.index + 1));
  obj.ballast.resize(words);
  for (auto& w : obj.ballast) w = util::splitmix64(fill);
}

std::uint64_t phase_value(std::uint64_t job_seed, std::uint32_t phase) {
  std::uint64_t s = job_seed + phase;
  return util::splitmix64(s) | 1u;  // nonzero
}

void apply_phase_hit(ServiceJobObject& obj, std::uint64_t value) {
  obj.acc += value ^ (0x9E3779B97F4A7C15ull * (obj.index + 1));
  if (!obj.ballast.empty()) {
    std::uint64_t s = value + obj.index;
    obj.ballast[value % obj.ballast.size()] ^= util::splitmix64(s);
  }
  ++obj.phase_hits;
}

std::uint64_t object_digest(const ServiceJobObject& obj) {
  std::uint64_t s = obj.index;
  std::uint64_t h = util::splitmix64(s);
  s = obj.acc;
  h ^= util::splitmix64(s) * 3;
  s = obj.phase_hits;
  h ^= util::splitmix64(s) * 7;
  std::uint64_t fold = 0;
  for (std::uint64_t w : obj.ballast) fold ^= w;
  s = fold;
  h ^= util::splitmix64(s) * 11;
  return h;
}

}  // namespace mrts::service
