#include "core/membership.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "core/health.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace mrts::core {

namespace {

bool event_before(const MembershipEventSpec& a, const MembershipEventSpec& b) {
  return a.step < b.step;
}

}  // namespace

MembershipManager::MembershipManager(MembershipOptions options)
    : options_(std::move(options)),
      m_drains_(&obs::MetricsRegistry::global().counter("membership.drains")),
      m_kills_(&obs::MetricsRegistry::global().counter("membership.kills")),
      m_rejoins_(
          &obs::MetricsRegistry::global().counter("membership.rejoins")),
      m_steals_committed_(&obs::MetricsRegistry::global().counter(
          "membership.steals_committed")),
      m_steals_aborted_(&obs::MetricsRegistry::global().counter(
          "membership.steals_aborted")),
      m_objects_rebuilt_(&obs::MetricsRegistry::global().counter(
          "membership.objects_rebuilt")) {
  std::stable_sort(options_.events.begin(), options_.events.end(),
                   event_before);
}

void MembershipManager::instrument(ClusterOptions& options) {
  inner_ = options.step_observer;
  options.step_observer = this;
  // Membership transitions are defined on virtual sweep numbers; the
  // threaded driver has no such clock.
  options.deterministic = true;
}

void MembershipManager::attach(Cluster& cluster) {
  cluster_ = &cluster;
  nodes_.assign(cluster.size(), NodeInfo{});
  for (NodeId id = 0; id < static_cast<NodeId>(cluster.size()); ++id) {
    cluster.node(id).set_membership_view(this);
  }
  cluster.set_membership_view(this);
}

void MembershipManager::schedule(MembershipEventSpec event) {
  options_.events.push_back(event);
  std::stable_sort(options_.events.begin() +
                       static_cast<std::ptrdiff_t>(next_event_),
                   options_.events.end(), event_before);
}

// --- StepObserver ----------------------------------------------------------

bool MembershipManager::node_runnable(NodeId node, std::uint64_t step) {
  if (node < nodes_.size() && nodes_[node].state == MembershipState::kDown) {
    return false;  // down: no polling, no handlers — traffic parks
  }
  return inner_ == nullptr || inner_->node_runnable(node, step);
}

void MembershipManager::on_step(std::uint64_t step) {
  if (inner_ != nullptr) inner_->on_step(step);
  if (cluster_ == nullptr) return;
  process_events(step);
  advance_drains(step);
  advance_steals(step);
  if (options_.work_stealing && options_.steal_check_interval > 0 &&
      step % options_.steal_check_interval == 0) {
    try_claim_steal(step);
  }
}

bool MembershipManager::quiescent() const {
  // A pending event, an unresolved speculation window, or an unfinished
  // drain all veto termination: a scheduled rejoin in particular must fire
  // even if the workload already looks drained (the killed node's parked
  // traffic only flows once it is back Up).
  if (next_event_ < options_.events.size()) return false;
  if (!steals_.empty()) return false;
  for (const NodeInfo& n : nodes_) {
    if (n.state == MembershipState::kDraining) return false;
  }
  return inner_ == nullptr || inner_->quiescent();
}

// --- MembershipView --------------------------------------------------------

bool MembershipManager::node_up(NodeId node) const {
  return node >= nodes_.size() || nodes_[node].state != MembershipState::kDown;
}

bool MembershipManager::node_accepting(NodeId node) const {
  return node >= nodes_.size() || node_choosable(node);
}

bool MembershipManager::node_choosable(NodeId node) const {
  return nodes_[node].state == MembershipState::kUp &&
         (health_ == nullptr || health_->node_healthy(node));
}

bool MembershipManager::node_departed(NodeId node) const {
  return node < nodes_.size() && nodes_[node].departed;
}

NodeId MembershipManager::fallback_node(NodeId exclude) const {
  // Preference order: healthy Up, then any Up (all-Suspect beats rerouting
  // to a draining or dead node), then anything not Down.
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (id != exclude && node_choosable(id)) return id;
  }
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (id != exclude && nodes_[id].state == MembershipState::kUp) return id;
  }
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (id != exclude && nodes_[id].state != MembershipState::kDown) return id;
  }
  return exclude;
}

std::size_t MembershipManager::live_nodes() const {
  std::size_t n = 0;
  for (const NodeInfo& info : nodes_) {
    if (info.state != MembershipState::kDown) ++n;
  }
  return n;
}

// --- event processing ------------------------------------------------------

void MembershipManager::process_events(std::uint64_t step) {
  while (next_event_ < options_.events.size() &&
         options_.events[next_event_].step <= step) {
    const MembershipEventSpec ev = options_.events[next_event_++];
    switch (ev.kind) {
      case MembershipEventSpec::Kind::kDrain:
        begin_drain(ev.node, step);
        break;
      case MembershipEventSpec::Kind::kKill:
        do_kill(ev.node);
        break;
      case MembershipEventSpec::Kind::kRejoin:
        do_rejoin(ev.node);
        break;
    }
  }
}

void MembershipManager::begin_drain(NodeId node, std::uint64_t step) {
  if (node >= nodes_.size()) return;
  NodeInfo& info = nodes_[node];
  // Idempotent: a second drain of a Draining or Down node is a no-op (the
  // double-drain test pins this).
  if (info.state != MembershipState::kUp) return;
  resolve_steals_involving(node);
  info.state = MembershipState::kDraining;
  info.drain_begin_step = step;
  ++stats_.drains;
  m_drains_->inc();
  obs::TraceRecorder::global().instant(obs::Cat::kOther,
                                       "membership.drain.begin",
                                       static_cast<std::uint16_t>(node));
  MRTS_LOG_INFO("membership: node {} draining (step {})", node, step);
}

void MembershipManager::advance_drains(std::uint64_t step) {
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    NodeInfo& info = nodes_[id];
    if (info.state != MembershipState::kDraining) continue;
    Runtime& rt = cluster_->node(id);
    // Settle migrations requested on earlier sweeps: gone means drained.
    std::erase_if(info.drain_requested, [&](MobilePtr p) {
      if (rt.hosts(p)) return false;
      ++stats_.objects_drained;
      return true;
    });
    const std::vector<MobilePtr> hosted = hosted_objects(id);
    std::size_t issued = 0;
    for (MobilePtr p : hosted) {
      if (issued >= options_.drain_objects_per_step) break;
      const NodeId target = next_target(id);
      if (target == id) break;  // no accepting survivor yet; retry next sweep
      // Repeated migrate() on a still-pending object just coalesces, so
      // re-requesting in-flight ones each sweep is harmless.
      rt.migrate(p, target);
      if (std::find(info.drain_requested.begin(), info.drain_requested.end(),
                    p) == info.drain_requested.end()) {
        info.drain_requested.push_back(p);
      }
      ++issued;
    }
    if (hosted.empty() && drain_gate(id)) complete_drain(id, step);
  }
}

bool MembershipManager::drain_gate(NodeId node) const {
  Runtime& rt = cluster_->node(node);
  if (!rt.is_idle() || !rt.inbox_empty()) return false;
  if (rt.stolen_entries() != 0) return false;
  for (const PendingSteal& s : steals_) {
    if (s.victim == node || s.thief == node) return false;
  }
  // Every reliable-link frame the node sent must be acked, and no live peer
  // may still owe it one — going Down with traffic in flight would strand a
  // sequenced frame forever.
  if (const net::ReliableLink* link = rt.reliable_link()) {
    if (link->has_unacked() || link->rx_buffered() != 0) return false;
  }
  for (NodeId p = 0; p < static_cast<NodeId>(nodes_.size()); ++p) {
    if (p == node || nodes_[p].state == MembershipState::kDown) continue;
    const net::ReliableLink* link = cluster_->node(p).reliable_link();
    if (link != nullptr && link->unacked_to(node) != 0) return false;
  }
  // Ack accounting alone is not airtight under fabric faults: a duplicated
  // or delayed copy of an already-acked frame is invisible to the reliable
  // layer, and if one lands in this inbox after the node goes Down it rots
  // there and vetoes termination forever. Hold the drain open until no copy
  // touching this node exists anywhere in the fabric.
  if (cluster_->fabric().in_flight_involving(node) != 0) return false;
  return true;
}

void MembershipManager::complete_drain(NodeId node, std::uint64_t step) {
  NodeInfo& info = nodes_[node];
  Runtime& rt = cluster_->node(node);
  for (MobilePtr p : info.drain_requested) {
    if (!rt.hosts(p)) ++stats_.objects_drained;
  }
  info.drain_requested.clear();
  info.state = MembershipState::kDown;
  info.departed = true;

  // Epoch-versioned directory handoff: every survivor learns everything the
  // drained node knew. The seeds go through the strictly-fresher filter, so
  // stale knowledge can never regress a survivor's directory. The drained
  // node keeps its own directory — in-flight routes that still name it are
  // re-aimed by reroute_if_departed, and home-routed chases converge.
  std::vector<std::tuple<MobilePtr, NodeId, std::uint64_t>> entries;
  rt.for_each_directory_entry_ex(
      [&](MobilePtr p, bool local, NodeId last, std::uint64_t epoch) {
        if (!local) entries.emplace_back(p, last, epoch);
      });
  std::sort(entries.begin(), entries.end());
  for (const auto& [p, last, epoch] : entries) {
    for (NodeId s = 0; s < static_cast<NodeId>(nodes_.size()); ++s) {
      if (s == node || nodes_[s].state == MembershipState::kDown) continue;
      cluster_->node(s).note_remote_location(p, last, epoch);
      ++stats_.handoff_updates;
    }
  }

  obs::TraceRecorder::global().complete(
      obs::Cat::kOther, "membership.drain", static_cast<std::uint16_t>(node),
      info.drain_begin_step, step - info.drain_begin_step, entries.size());
  MRTS_LOG_INFO("membership: node {} drained (step {}, {} handoff entries)",
                node, step, entries.size());
  retarget_budgets();
}

void MembershipManager::do_kill(NodeId node) {
  if (node >= nodes_.size()) return;
  NodeInfo& info = nodes_[node];
  if (info.state == MembershipState::kDown) return;
  // Down FIRST: a steal committing toward (or from) a dying node would put
  // an install frame on a link that cannot retransmit until rejoin, so all
  // speculation windows involving it are force-aborted before export.
  info.state = MembershipState::kDraining;  // keep node_up true for rollback
  resolve_steals_involving(node);
  info.state = MembershipState::kDown;
  info.drain_requested.clear();

  Runtime& rt = cluster_->node(node);
  std::vector<Runtime::RecoveredObject> recs = rt.crash_export();
  rt.crash_wipe();

  std::uint64_t rebuilt = 0;
  for (const Runtime::RecoveredObject& rec : recs) {
    if (rec.lost) {
      ++stats_.objects_lost;
      continue;
    }
    const NodeId target = next_target(node);
    if (target == node) {  // no accepting survivor anywhere
      ++stats_.objects_lost;
      continue;
    }
    cluster_->node(target).install_recovered(node, rec.frame);
    ++rebuilt;
    for (NodeId s = 0; s < static_cast<NodeId>(nodes_.size()); ++s) {
      if (s == node || s == target) continue;
      if (nodes_[s].state == MembershipState::kDown) continue;
      cluster_->node(s).note_remote_location(rec.ptr, target, rec.epoch);
      ++stats_.handoff_updates;
    }
  }
  ++stats_.kills;
  stats_.objects_rebuilt += rebuilt;
  m_kills_->inc();
  m_objects_rebuilt_->inc(rebuilt);
  obs::TraceRecorder::global().instant(obs::Cat::kOther, "membership.kill",
                                       static_cast<std::uint16_t>(node),
                                       rebuilt);
  MRTS_LOG_INFO("membership: node {} killed ({} rebuilt, {} lost)", node,
                rebuilt, stats_.objects_lost);
  retarget_budgets();
}

void MembershipManager::do_rejoin(NodeId node) {
  if (node >= nodes_.size()) return;
  NodeInfo& info = nodes_[node];
  // Only crashed nodes rejoin; a drained node departed for good.
  if (info.state != MembershipState::kDown || info.departed) return;

  // Seed the rejoiner with the live cluster's full directory knowledge,
  // freshest epoch per object. Home-owned entries make home-routed
  // deliveries land somewhere useful, but the rejoiner is also the target
  // of every stale third-party cache that still names it from before the
  // crash: if it comes back empty, such a route misses here, chases an
  // object whose home may itself have departed, and the fallback bounce
  // never converges. Entries that claim the object is at the rejoiner are
  // skipped — it was wiped, so that claim is dead by construction.
  Runtime& rejoiner = cluster_->node(node);
  std::vector<std::tuple<MobilePtr, NodeId, std::uint64_t>> seeds;
  for (NodeId s = 0; s < static_cast<NodeId>(nodes_.size()); ++s) {
    if (s == node || nodes_[s].state == MembershipState::kDown) continue;
    cluster_->node(s).for_each_directory_entry_ex(
        [&](MobilePtr p, bool local, NodeId last, std::uint64_t epoch) {
          const NodeId where = local ? s : last;
          if (where == node) return;
          seeds.emplace_back(p, where, epoch);
        });
  }
  std::sort(seeds.begin(), seeds.end());
  for (const auto& [p, where, epoch] : seeds) {
    rejoiner.note_remote_location(p, where, epoch);
    ++stats_.handoff_updates;
  }

  info.state = MembershipState::kUp;
  ++stats_.rejoins;
  m_rejoins_->inc();
  obs::TraceRecorder::global().instant(obs::Cat::kOther, "membership.rejoin",
                                       static_cast<std::uint16_t>(node),
                                       seeds.size());
  MRTS_LOG_INFO("membership: node {} rejoined ({} location seeds)", node,
                seeds.size());
  retarget_budgets();
}

// --- work stealing ---------------------------------------------------------

void MembershipManager::advance_steals(std::uint64_t step) {
  std::vector<PendingSteal> keep;
  keep.reserve(steals_.size());
  for (PendingSteal& s : steals_) {
    if (s.decide_step > step) {
      keep.push_back(std::move(s));
      continue;
    }
    const bool committed = cluster_->node(s.victim).steal_resolve(
        s.ptr, s.thief, std::move(s.frame));
    if (committed) {
      ++stats_.steals_committed;
      m_steals_committed_->inc();
    } else {
      ++stats_.steals_aborted;
      m_steals_aborted_->inc();
    }
  }
  steals_ = std::move(keep);
}

void MembershipManager::try_claim_steal(std::uint64_t step) {
  if (steals_.size() >= options_.steal_max_inflight) return;
  NodeId victim = 0, thief = 0;
  std::uint64_t vload = 0;
  std::uint64_t tload = std::numeric_limits<std::uint64_t>::max();
  std::size_t thosted = 0;
  bool have_victim = false, have_thief = false;
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (nodes_[id].state != MembershipState::kUp) continue;
    const std::uint64_t load = cluster_->node(id).queued_messages();
    const std::size_t hosted = cluster_->node(id).local_objects();
    if (!have_victim || load > vload) {
      vload = load;
      victim = id;
      have_victim = true;
    }
    // A Suspect node still makes a fine victim (shedding its queue is the
    // point) but never a thief: handing it more work while it is slow is
    // the anti-mitigation.
    if (health_ != nullptr && !health_->node_healthy(id)) continue;
    // Queue ties break toward the node hosting the fewest objects, so a
    // freshly rejoined (empty) member wins the thief slot over survivors
    // that already absorbed earlier steals.
    if (!have_thief || load < tload || (load == tload && hosted < thosted)) {
      tload = load;
      thosted = hosted;
      thief = id;
      have_thief = true;
    }
  }
  if (!have_victim || !have_thief || victim == thief) return;
  if (vload < options_.steal_min_queue || vload < 2 * tload + 1) return;
  for (MobilePtr p : hosted_objects(victim)) {
    std::vector<std::byte> frame;
    if (!cluster_->node(victim).steal_claim(p, frame)) continue;
    steals_.push_back(PendingSteal{p, victim, thief,
                                   step + options_.steal_decision_delay,
                                   std::move(frame)});
    ++stats_.steals_claimed;
    return;  // one claim per check
  }
}

void MembershipManager::resolve_steals_involving(NodeId node) {
  std::vector<PendingSteal> keep;
  keep.reserve(steals_.size());
  for (PendingSteal& s : steals_) {
    if (s.victim != node && s.thief != node) {
      keep.push_back(std::move(s));
      continue;
    }
    cluster_->node(s.victim).steal_resolve(s.ptr, s.thief, std::move(s.frame),
                                           /*force_abort=*/true);
    ++stats_.steals_aborted;
    m_steals_aborted_->inc();
  }
  steals_ = std::move(keep);
}

// --- helpers ---------------------------------------------------------------

void MembershipManager::retarget_budgets() {
  if (!options_.retarget_budgets) return;
  // Survivors absorb the leaver's objects: reset every Up node's working
  // budget to its configured physical budget (never above it — the chaos
  // check_budget invariant gates the physical bound).
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (nodes_[id].state != MembershipState::kUp) continue;
    Runtime& rt = cluster_->node(id);
    rt.set_memory_budget(rt.options().ooc.memory_budget_bytes);
  }
}

NodeId MembershipManager::next_target(NodeId exclude) {
  const std::size_t n = nodes_.size();
  // First pass wants healthy Up nodes; if every Up node is Suspect the
  // second pass takes any of them rather than falling back to `exclude`.
  for (std::size_t i = 0; i < n; ++i) {
    const auto cand = static_cast<NodeId>((rr_target_ + i) % n);
    if (cand == exclude) continue;
    if (!node_choosable(cand)) continue;
    rr_target_ = (static_cast<std::size_t>(cand) + 1) % n;
    return cand;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto cand = static_cast<NodeId>((rr_target_ + i) % n);
    if (cand == exclude) continue;
    if (nodes_[cand].state != MembershipState::kUp) continue;
    rr_target_ = (static_cast<std::size_t>(cand) + 1) % n;
    return cand;
  }
  return exclude;
}

std::vector<MobilePtr> MembershipManager::hosted_objects(NodeId node) const {
  const Runtime& rt = cluster_->node(node);
  std::vector<MobilePtr> out;
  rt.for_each_local_object([&](MobilePtr p) {
    if (rt.object_health(p) == ObjectHealth::kPoisoned) return;
    out.push_back(p);
  });
  // Deterministic order regardless of directory hash-map iteration.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mrts::core
