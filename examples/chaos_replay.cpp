// Chaos seed replay: run the hop workload under a seeded fault plan and
// print the deterministic event trace. The same --chaos_seed always prints
// a byte-identical trace (same CRC), which is the debugging workflow:
// a failing seed from the chaos sweep can be replayed here — and in a
// debugger — as often as needed, with every fault landing on the same
// operation every time.
//
// Build & run:   cmake --build build && ./build/examples/chaos_replay
//   ./build/examples/chaos_replay --chaos_seed=13
//   ./build/examples/chaos_replay --chaos_seed=13 --trace   # full dump
//   ./build/examples/chaos_replay --chaos_seed=13 --trace=replay.json
//     # Chrome trace (chrome://tracing / Perfetto) on the virtual step clock

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/chaos.hpp"
#include "chaos/workload.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

using namespace mrts;

namespace {

std::uint64_t arg_u64(int argc, char** argv, const char* name,
                      std::uint64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::string arg_str(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = arg_u64(argc, argv, "--chaos_seed", 1);
  const std::uint64_t nodes = arg_u64(argc, argv, "--nodes", 4);
  const bool dump_trace = arg_flag(argc, argv, "--trace");
  const std::string trace_json = arg_str(argc, argv, "--trace");

  if (!trace_json.empty()) {
    // Span timestamps follow the deterministic driver's sweep counter, so
    // the exported timeline is step-accurate and replays identically.
    obs::TraceRecorder::global().enable(
        {.ring_capacity = std::size_t{1} << 16,
         .clock = obs::TraceClock::kVirtual});
  }

  chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.storage.store_failure_rate = 0.1;
  plan.storage.load_failure_rate = 0.1;
  plan.storage.latency_spike_rate = 0.05;
  plan.storage.latency_spike = std::chrono::microseconds(20);
  plan.net.delay_rate = 0.1;
  plan.net.max_delay_steps = 6;
  plan.random_pauses = 2;

  chaos::Harness harness(plan);
  core::ClusterOptions options;
  options.nodes = nodes;
  options.runtime.ooc.memory_budget_bytes = 256u << 10;
  options.runtime.storage_retry.max_retries = 16;
  options.spill = core::SpillMedium::kMemory;
  harness.instrument(options);

  core::Cluster cluster(options);
  chaos::HopWorkloadOptions wl;
  wl.payload_words = 1024;
  wl.routes = 16;
  wl.route_length = 6;
  wl.migrate_every = 3;
  wl.seed = seed;
  chaos::HopWorkload workload(cluster, wl);
  workload.create_objects();
  workload.inject();

  const auto report = cluster.run();
  const auto inv = harness.check(cluster);

  if (dump_trace) {
    std::fputs(harness.trace().text().c_str(), stdout);
  }
  if (!trace_json.empty()) {
    auto& tr = obs::TraceRecorder::global();
    tr.disable();
    const auto st = obs::write_chrome_trace(trace_json, tr);
    if (st.is_ok()) {
      std::printf("chrome trace %s (%llu events, %llu dropped)\n",
                  trace_json.c_str(),
                  static_cast<unsigned long long>(tr.total_recorded()),
                  static_cast<unsigned long long>(tr.total_dropped()));
    } else {
      std::printf("chrome trace FAILED: %s\n", st.to_string().c_str());
    }
  }
  std::printf("chaos_seed   %llu\n", static_cast<unsigned long long>(seed));
  std::printf("trace        %zu events, crc32 %08x\n", harness.trace().lines(),
              harness.trace().crc());
  std::printf("hops         %llu executed / %llu expected\n",
              static_cast<unsigned long long>(workload.executed_hops()),
              static_cast<unsigned long long>(workload.expected_hops()));
  std::printf("net faults   dropped=%llu duplicated=%llu delayed=%llu "
              "reordered=%llu\n",
              static_cast<unsigned long long>(report.fabric.messages_dropped),
              static_cast<unsigned long long>(
                  report.fabric.messages_duplicated),
              static_cast<unsigned long long>(report.fabric.messages_delayed),
              static_cast<unsigned long long>(
                  report.fabric.messages_reordered));
  std::printf("invariants   %s\n", inv.ok() ? "all hold" : "VIOLATED");
  if (!inv.ok()) std::fputs(inv.to_string().c_str(), stdout);
  if (report.timed_out) std::puts("run TIMED OUT before quiescence");
  return inv.ok() && !report.timed_out ? 0 : 1;
}
