file(REMOVE_RECURSE
  "CMakeFiles/mrts_jobsim.dir/jobsim.cpp.o"
  "CMakeFiles/mrts_jobsim.dir/jobsim.cpp.o.d"
  "libmrts_jobsim.a"
  "libmrts_jobsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrts_jobsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
