#include "storage/segment_log.hpp"

#include <charconv>
#include <cstring>

#include "storage/sealed_blob.hpp"
#include "util/archive.hpp"
#include "util/format.hpp"

namespace mrts::storage {

RecordExtent append_record(std::vector<std::byte>& segment, ObjectKey key,
                           std::uint64_t generation, RecordKind kind,
                           std::span<const std::byte> payload) {
  util::ByteWriter body(payload.size() + 32);
  body.write(key);
  body.write(generation);
  body.write(static_cast<std::uint8_t>(kind));
  body.write<std::uint64_t>(payload.size());
  body.write_bytes(payload);
  const std::vector<std::byte> sealed = seal_blob(std::move(body));

  RecordExtent extent{segment.size(), kSegmentRecordHeader + sealed.size()};
  util::ByteWriter frame(extent.length);
  frame.write(kSegmentRecordMagic);
  frame.write(static_cast<std::uint32_t>(sealed.size()));
  frame.write_bytes(sealed);
  const std::vector<std::byte> framed = std::move(frame).take();
  segment.insert(segment.end(), framed.begin(), framed.end());
  return extent;
}

util::Result<SegmentRecord> read_record_at(std::span<const std::byte> segment,
                                           std::uint64_t offset) {
  if (offset + kSegmentRecordHeader > segment.size()) {
    return util::Status(util::StatusCode::kCorruption,
                        "record header past end of segment");
  }
  std::uint32_t magic = 0;
  std::uint32_t sealed_len = 0;
  std::memcpy(&magic, segment.data() + offset, sizeof(magic));
  std::memcpy(&sealed_len, segment.data() + offset + sizeof(magic),
              sizeof(sealed_len));
  if (magic != kSegmentRecordMagic) {
    return util::Status(util::StatusCode::kCorruption, "bad record magic");
  }
  if (sealed_len > kMaxSegmentRecordBytes ||
      offset + kSegmentRecordHeader + sealed_len > segment.size()) {
    return util::Status(util::StatusCode::kCorruption, "truncated record");
  }
  const auto sealed = segment.subspan(offset + kSegmentRecordHeader, sealed_len);
  auto payload = unseal_blob(sealed);
  if (!payload.is_ok()) return payload.status();
  try {
    util::ByteReader in(payload.value());
    SegmentRecord rec;
    rec.key = in.read<ObjectKey>();
    rec.generation = in.read<std::uint64_t>();
    const auto kind = in.read<std::uint8_t>();
    if (kind > static_cast<std::uint8_t>(RecordKind::kTombstone)) {
      return util::Status(util::StatusCode::kCorruption, "bad record kind");
    }
    rec.kind = static_cast<RecordKind>(kind);
    const auto n = in.read<std::uint64_t>();
    if (n != in.remaining()) {
      return util::Status(util::StatusCode::kCorruption,
                          "record payload length mismatch");
    }
    const auto view = in.read_bytes(static_cast<std::size_t>(n));
    rec.payload.assign(view.begin(), view.end());
    return rec;
  } catch (const util::ArchiveError&) {
    return util::Status(util::StatusCode::kCorruption,
                        "malformed record body");
  }
}

SegmentScan scan_segment(
    std::span<const std::byte> segment,
    const std::function<void(const RecordExtent&, SegmentRecord&&)>& fn) {
  SegmentScan scan;
  std::uint64_t offset = 0;
  while (offset + kSegmentRecordHeader <= segment.size()) {
    auto rec = read_record_at(segment, offset);
    if (!rec.is_ok()) {
      scan.damaged = true;
      return scan;
    }
    std::uint32_t sealed_len = 0;
    std::memcpy(&sealed_len, segment.data() + offset + sizeof(std::uint32_t),
                sizeof(sealed_len));
    const RecordExtent extent{offset, kSegmentRecordHeader + sealed_len};
    if (fn) fn(extent, std::move(rec).value());
    offset += extent.length;
    ++scan.records;
    scan.valid_bytes = offset;
  }
  // A trailing stub shorter than one header is damage too (torn append).
  scan.damaged = offset != segment.size();
  return scan;
}

std::string segment_file_name(std::uint64_t id) {
  return util::format("{:016x}.seg", id);
}

std::optional<std::uint64_t> parse_segment_file_name(std::string_view name) {
  constexpr std::string_view kSuffix = ".seg";
  if (name.size() != 16 + kSuffix.size() ||
      name.substr(16) != kSuffix) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  const auto [ptr, ec] =
      std::from_chars(name.data(), name.data() + 16, id, 16);
  if (ec != std::errc{} || ptr != name.data() + 16) return std::nullopt;
  return id;
}

}  // namespace mrts::storage
