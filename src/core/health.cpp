#include "core/health.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "simnet/reliable.hpp"

namespace mrts::core {

HealthMonitor::HealthMonitor(HealthOptions options)
    : options_(options),
      m_suspects_(&obs::MetricsRegistry::global().counter("health.suspects")),
      m_recoveries_(
          &obs::MetricsRegistry::global().counter("health.recoveries")) {
  assert(options_.sample_interval >= 1);
}

void HealthMonitor::instrument(ClusterOptions& options) {
  inner_ = options.step_observer;
  options.step_observer = this;
  // Sampling windows are defined on virtual sweeps; free-running threads
  // would make the signal (and every decision derived from it) racy.
  options.deterministic = true;
}

void HealthMonitor::attach(Cluster& cluster) {
  cluster_ = &cluster;
  nodes_.assign(cluster.size(), PerNode{});
  pair_retx_.assign(cluster.size() * cluster.size(), 0);
  membership_ = nullptr;
  cluster.set_membership_view(this);
  for (std::size_t id = 0; id < cluster.size(); ++id) {
    cluster.node(static_cast<NodeId>(id)).set_membership_view(this);
  }
}

void HealthMonitor::attach(Cluster& cluster, MembershipManager& membership) {
  cluster_ = &cluster;
  nodes_.assign(cluster.size(), PerNode{});
  pair_retx_.assign(cluster.size() * cluster.size(), 0);
  membership_ = &membership;
  // The manager stays the installed MembershipView (it owns liveness); the
  // overlay folds "healthy" into its accepting/steering answers.
  membership.set_health_view(this);
}

bool HealthMonitor::node_runnable(NodeId node, std::uint64_t step) {
  // Health never pauses anyone — a Suspect node keeps serving.
  return inner_ == nullptr || inner_->node_runnable(node, step);
}

void HealthMonitor::on_step(std::uint64_t step) {
  // Inner first (harness trace / membership transitions), then sample: the
  // sample sees the world the application saw this sweep.
  if (inner_ != nullptr) inner_->on_step(step);
  if (cluster_ != nullptr && step % options_.sample_interval == 0) {
    sample(step);
  }
}

bool HealthMonitor::quiescent() const {
  // Health states are advisory; they never veto termination.
  return inner_ == nullptr || inner_->quiescent();
}

bool HealthMonitor::node_healthy(NodeId node) const {
  // Probation is choosable again: capacity returns while the last clean
  // streak completes, and a relapse re-suspects immediately.
  return node >= nodes_.size() ||
         nodes_[node].health.state != HealthState::kSuspect;
}

NodeId HealthMonitor::fallback_node(NodeId exclude) const {
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (id != exclude && node_healthy(id)) return id;
  }
  return exclude;
}

std::uint64_t HealthMonitor::median_nonzero(std::vector<std::uint64_t> values) {
  values.erase(std::remove(values.begin(), values.end(), 0u), values.end());
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

void HealthMonitor::sample(std::uint64_t step) {
  const auto n = static_cast<NodeId>(cluster_->size());
  ++stats_.samples;

  // --- storage: per-op modeled latency EWMA, differenced per sample -------
  std::vector<std::uint64_t> per_op(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    const storage::BackendStats st = cluster_->node(i).spill_backend().stats();
    const std::uint64_t v =
        st.virtual_store_latency_us + st.virtual_load_latency_us;
    const std::uint64_t ops = st.store_ops + st.load_ops;
    PerNode& pn = nodes_[i];
    if (v >= pn.prev_virtual_us && ops >= pn.prev_ops) {
      const std::uint64_t d_ops = ops - pn.prev_ops;
      auto& e = pn.health.storage_ewma_us_per_op;
      if (d_ops > 0) {
        // Half-weight on the fresh sample: heavy smoothing is unnecessary
        // (the streak thresholds debounce) and would keep a recovered
        // node's score above the flag line for many samples after its
        // degradation window closes.
        const std::uint64_t per = (v - pn.prev_virtual_us) / d_ops;
        e = e == 0 ? per : (e + per) / 2;
      } else {
        // No ops this sample: the evidence goes stale. Pull the score
        // toward the cluster's reference per-op cost (NOT toward zero —
        // idle healthy nodes anchor the median, and shrinking everyone
        // together would leave the sick node's ratio unchanged). Without
        // aging, one early burst of slow ops pins a now-idle device
        // Suspect for the rest of the run.
        e = (e + last_stor_ref_) / 2;
      }
    }
    // A snapshot that moved backward means a crash wiped the backend:
    // re-baseline rather than underflow.
    pn.prev_virtual_us = v;
    pn.prev_ops = ops;
    per_op[i] = pn.health.storage_ewma_us_per_op;
  }

  // --- network: per-peer retransmits and smoothed RTT, attributed to the
  // TARGET of each flow (retransmits at my peers mean I am slow to ack).
  // Both ends of a flow involving a sick node see it inflated, so raw
  // per-target max would smear the flag across its peers; aggregating the
  // MEDIAN over reporters (and counting distinct retransmitting reporters)
  // flags only the node a majority of its peers see as slow.
  std::vector<std::vector<std::uint64_t>> srtt_reports(n);
  std::vector<std::uint64_t> retx_delta(n, 0);
  std::vector<std::uint32_t> retx_reporters(n, 0);
  for (NodeId p = 0; p < n; ++p) {
    const net::ReliableLink* link = cluster_->node(p).reliable_link();
    if (link == nullptr) continue;
    for (const net::ReliableTxFlow& f : link->tx_flows()) {
      if (f.peer >= n || f.peer == p) continue;
      std::uint64_t& prev = pair_retx_[static_cast<std::size_t>(p) * n + f.peer];
      const std::uint64_t d = f.retransmits >= prev ? f.retransmits - prev : 0;
      prev = f.retransmits;
      if (d > 0) {
        retx_delta[f.peer] += d;
        ++retx_reporters[f.peer];
      }
      if (f.rtt_samples > 0) srtt_reports[f.peer].push_back(f.srtt_ticks);
    }
  }
  std::vector<std::uint64_t> srtt_med(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    srtt_med[i] = median_nonzero(srtt_reports[i]);
  }

  const std::uint64_t stor_ref = median_nonzero(per_op);
  const std::uint64_t rtt_ref = median_nonzero(srtt_med);
  if (stor_ref > 0) last_stor_ref_ = stor_ref;

  for (NodeId i = 0; i < n; ++i) {
    PerNode& pn = nodes_[i];
    pn.health.retx_toward_last = retx_delta[i];
    pn.health.srtt_max_ticks = srtt_med[i];
    const bool bad_storage =
        stor_ref > 0 && per_op[i] > options_.latency_factor * stor_ref;
    const bool bad_rtt = rtt_ref >= options_.min_rtt_floor_ticks &&
                         srtt_med[i] > options_.rtt_factor * rtt_ref;
    const bool bad_retx = retx_delta[i] >= options_.retx_per_sample &&
                          retx_reporters[i] >= (n > 2 ? 2u : 1u);
    bool bad = bad_storage || bad_rtt || bad_retx;
    // Down/Draining nodes are the fail-stop layer's business, not gray.
    if (membership_ != nullptr &&
        membership_->state(i) != MembershipState::kUp) {
      bad = false;
    }
    decide(pn, bad, i, step);
  }
}

void HealthMonitor::decide(PerNode& node, bool bad, NodeId id,
                           std::uint64_t step) {
  (void)id;
  (void)step;
  NodeHealth& h = node.health;
  if (bad) {
    ++h.bad_streak;
    h.clean_streak = 0;
  } else {
    ++h.clean_streak;
    h.bad_streak = 0;
  }
  switch (h.state) {
    case HealthState::kHealthy:
      if (h.bad_streak >= options_.suspect_streak) {
        h.state = HealthState::kSuspect;
        h.bad_streak = 0;
        h.clean_streak = 0;
        ++h.suspect_events;
        ++stats_.suspects;
        m_suspects_->inc();
      }
      break;
    case HealthState::kSuspect:
      if (h.clean_streak >= options_.probation_streak) {
        h.state = HealthState::kProbation;
        h.bad_streak = 0;
        h.clean_streak = 0;
      }
      break;
    case HealthState::kProbation:
      if (bad) {
        // Relapse: one bad sample sends Probation straight back.
        h.state = HealthState::kSuspect;
        h.bad_streak = 0;
        h.clean_streak = 0;
        ++h.suspect_events;
        ++stats_.suspects;
        m_suspects_->inc();
      } else if (h.clean_streak >= options_.recover_streak) {
        h.state = HealthState::kHealthy;
        h.bad_streak = 0;
        h.clean_streak = 0;
        ++h.recoveries;
        ++stats_.recoveries;
        m_recoveries_->inc();
      }
      break;
  }
}

}  // namespace mrts::core
