#pragma once

// Shared message-rate section for the paper-table benches: the AM hot path
// under sustained frame loss, batched vs unbatched. The paper's motivating
// observation is that parallel mesh generation emits "many tiny
// asynchronous split messages"; small-message aggregation amortizes one
// sequence number, one ack, and one retransmit timer over a whole batch,
// so the useful-work rate per wire DATA transmission — delivered AMs per
// DATA frame, counting retransmissions — must rise well above the
// one-frame-per-AM baseline, and nowhere more than on a lossy fabric where
// every frame is a retransmission candidate.
//
// Setting MRTS_BENCH_MSGRATE_ONLY=1 skips the (slow) mesh tables in the
// harness that includes this header and emits only this section — the CI
// aggregation gate runs the benches in that mode.

#include <cstdlib>

#include "bench_common.hpp"
#include "chaos/chaos.hpp"
#include "chaos/workload.hpp"
#include "core/runtime.hpp"

namespace mrts::bench {

struct MsgRateOutcome {
  std::uint64_t ams = 0;          // application AMs accepted by the links
  std::uint64_t data_frames = 0;  // DATA transmissions, retransmits included
  std::uint64_t retransmits = 0;
  std::uint64_t det_steps = 0;
  double ams_per_frame = 0.0;     // the message-rate metric
  bool timed_out = false;
};

/// One seeded hop-routing run over the reliable layer at `loss_rate` frame
/// loss. `batch_records` = 1 is the unbatched baseline (every AM is its own
/// DATA frame); > 1 enables aggregation. Both configurations execute the
/// same seeded workload, so the ratio of their per-frame rates isolates
/// what aggregation buys.
inline MsgRateOutcome run_msgrate(double loss_rate, std::size_t batch_records,
                                  std::uint64_t seed = 42) {
  chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.net.drop_rate = loss_rate;
  chaos::Harness harness(plan);

  core::ClusterOptions options;
  options.nodes = 4;
  options.runtime.ooc.memory_budget_bytes = 256u << 10;
  options.runtime.reliable_net.enabled = true;
  options.runtime.reliable_net.batch_max_records = batch_records;
  options.spill = core::SpillMedium::kMemory;
  options.max_run_time = std::chrono::seconds(120);
  harness.instrument(options);
  core::Cluster cluster(options);

  chaos::HopWorkloadOptions wl;
  wl.payload_words = 256;
  wl.routes = 256;
  wl.route_length = 8;
  wl.migrate_every = 4;
  wl.seed = seed;
  chaos::HopWorkload workload(cluster, wl);
  workload.create_objects();
  workload.inject();

  const auto report = cluster.run();
  MsgRateOutcome out;
  out.timed_out = report.timed_out;
  out.det_steps = report.det_steps;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto* link =
        cluster.node(static_cast<net::NodeId>(i)).reliable_link();
    if (link == nullptr) continue;
    out.ams += link->ams_sent();
    // batches() counts first transmissions (one per frame even when
    // batch_records == 1); adding retransmits gives total wire DATA cost.
    out.data_frames += link->batches() + link->retransmits();
    out.retransmits += link->retransmits();
  }
  if (out.data_frames > 0) {
    out.ams_per_frame = static_cast<double>(out.ams) /
                        static_cast<double>(out.data_frames);
  }
  return out;
}

[[nodiscard]] inline bool msgrate_only() {
  return std::getenv("MRTS_BENCH_MSGRATE_ONLY") != nullptr;
}

/// Runs the loss sweep at 2% and 10%, prints the table, and stamps the
/// metadata keys the CI aggregation gate reads:
///   msgrate_speedup_min      worst-case batched/unbatched per-frame ratio
///   msgrate_unbatched_worst  lowest unbatched AMs/frame over the sweep
///   msgrate_batched_worst    lowest batched AMs/frame over the sweep
inline void add_msgrate_section(BenchReport& report) {
  Table table({"config", "loss", "AMs", "DATA frames", "retransmits",
               "det steps", "AMs/frame"});
  double speedup_min = 0.0;
  double unbatched_worst = 0.0;
  double batched_worst = 0.0;
  bool first = true;
  for (const double loss : {0.02, 0.10}) {
    const MsgRateOutcome un = run_msgrate(loss, /*batch_records=*/1);
    const MsgRateOutcome ba = run_msgrate(loss, /*batch_records=*/8);
    table.row("unbatched", util::format("{:.0f}%", 100.0 * loss), un.ams,
              un.data_frames, un.retransmits, un.det_steps,
              util::format("{:.2f}", un.ams_per_frame));
    table.row("batched(8)", util::format("{:.0f}%", 100.0 * loss), ba.ams,
              ba.data_frames, ba.retransmits, ba.det_steps,
              util::format("{:.2f}", ba.ams_per_frame));
    const double ratio = un.ams_per_frame > 0.0
                             ? ba.ams_per_frame / un.ams_per_frame
                             : 0.0;
    if (first || ratio < speedup_min) speedup_min = ratio;
    if (first || un.ams_per_frame < unbatched_worst) {
      unbatched_worst = un.ams_per_frame;
    }
    if (first || ba.ams_per_frame < batched_worst) {
      batched_worst = ba.ams_per_frame;
    }
    first = false;
  }
  report.add("message rate under loss (batched vs unbatched)",
             std::move(table));
  report.set_meta("msgrate_speedup_min", util::format("{:.2f}", speedup_min));
  report.set_meta("msgrate_unbatched_worst",
                  util::format("{:.2f}", unbatched_worst));
  report.set_meta("msgrate_batched_worst",
                  util::format("{:.2f}", batched_worst));
}

}  // namespace mrts::bench
