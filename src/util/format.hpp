#pragma once

// Minimal std::format stand-in (libstdc++ 12 does not ship <format>).
// Supports "{}" placeholders and the "{:.Nf}" / "{:x}" specs the codebase
// uses; anything fancier prints with default formatting. Unmatched braces
// are emitted literally.

#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>

namespace mrts::util {

namespace detail {

template <typename T>
void append_with_spec(std::string& out, std::string_view spec, const T& v) {
  std::ostringstream os;
  if (!spec.empty() && spec.front() == ':') {
    spec.remove_prefix(1);
    // Width with zero fill, e.g. "016x".
    bool zero = false;
    if (!spec.empty() && spec.front() == '0') {
      zero = true;
      spec.remove_prefix(1);
    }
    int width = 0;
    while (!spec.empty() && spec.front() >= '0' && spec.front() <= '9') {
      width = width * 10 + (spec.front() - '0');
      spec.remove_prefix(1);
    }
    if (!spec.empty() && spec.front() == '.') {
      spec.remove_prefix(1);
      int precision = 0;
      while (!spec.empty() && spec.front() >= '0' && spec.front() <= '9') {
        precision = precision * 10 + (spec.front() - '0');
        spec.remove_prefix(1);
      }
      os << std::fixed << std::setprecision(precision);
    }
    if (!spec.empty() && (spec.front() == 'x' || spec.front() == 'X')) {
      os << std::hex;
    }
    if (width > 0) {
      os << std::setw(width);
      if (zero) os << std::setfill('0');
    }
  }
  os << v;
  out += os.str();
}

/// Appends fmt with "{{" and "}}" unescaped to single braces.
inline void append_unescaped(std::string& out, std::string_view fmt) {
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    out += fmt[i];
    if (i + 1 < fmt.size() &&
        ((fmt[i] == '{' && fmt[i + 1] == '{') ||
         (fmt[i] == '}' && fmt[i + 1] == '}'))) {
      ++i;
    }
  }
}

inline void format_rest(std::string& out, std::string_view fmt) {
  append_unescaped(out, fmt);
}

template <typename T, typename... Rest>
void format_rest(std::string& out, std::string_view fmt, const T& v,
                 const Rest&... rest) {
  const auto open = fmt.find('{');
  if (open == std::string_view::npos) {
    append_unescaped(out, fmt);
    return;
  }
  // "{{" escapes a literal brace.
  if (open + 1 < fmt.size() && fmt[open + 1] == '{') {
    append_unescaped(out, fmt.substr(0, open + 1));
    format_rest(out, fmt.substr(open + 2), v, rest...);
    return;
  }
  const auto close = fmt.find('}', open);
  if (close == std::string_view::npos) {
    append_unescaped(out, fmt);
    return;
  }
  append_unescaped(out, fmt.substr(0, open));
  append_with_spec(out, fmt.substr(open + 1, close - open - 1), v);
  format_rest(out, fmt.substr(close + 1), rest...);
}

}  // namespace detail

template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  std::string out;
  out.reserve(fmt.size() + sizeof...(args) * 8);
  detail::format_rest(out, fmt, args...);
  return out;
}

}  // namespace mrts::util
