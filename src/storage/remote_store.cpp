#include "storage/remote_store.hpp"

#include <thread>

namespace mrts::storage {
namespace {

/// Per-node view over the shared pool; tracks this node's keys and stats.
class RemoteMemoryBackend final : public StorageBackend {
 public:
  RemoteMemoryBackend(RemoteMemoryPool& pool, std::uint32_t local)
      : pool_(&pool), local_(local) {}

  util::Status store(ObjectKey key, std::span<const std::byte> bytes) override {
    if (auto s = pool_->pool_store(local_, key, bytes); !s.is_ok()) return s;
    std::lock_guard lock(mutex_);
    auto [it, inserted] = sizes_.try_emplace(key, 0);
    stored_bytes_ -= it->second;
    it->second = bytes.size();
    stored_bytes_ += bytes.size();
    stats_.bytes_written += bytes.size();
    ++stats_.store_ops;
    return util::Status::ok();
  }

  util::Result<std::vector<std::byte>> load(ObjectKey key) override {
    auto result = pool_->pool_load(local_, key);
    if (result.is_ok()) {
      std::lock_guard lock(mutex_);
      stats_.bytes_read += result.value().size();
      ++stats_.load_ops;
    }
    return result;
  }

  util::Status erase(ObjectKey key) override {
    if (auto s = pool_->pool_erase(local_, key); !s.is_ok()) return s;
    std::lock_guard lock(mutex_);
    auto it = sizes_.find(key);
    if (it != sizes_.end()) {
      stored_bytes_ -= it->second;
      sizes_.erase(it);
    }
    ++stats_.erase_ops;
    return util::Status::ok();
  }

  bool contains(ObjectKey key) const override {
    std::lock_guard lock(mutex_);
    return sizes_.contains(key);
  }
  std::size_t count() const override {
    std::lock_guard lock(mutex_);
    return sizes_.size();
  }
  std::uint64_t stored_bytes() const override {
    std::lock_guard lock(mutex_);
    return stored_bytes_;
  }
  BackendStats stats() const override {
    std::lock_guard lock(mutex_);
    return stats_;
  }

 private:
  RemoteMemoryPool* pool_;
  std::uint32_t local_;
  mutable std::mutex mutex_;
  std::unordered_map<ObjectKey, std::uint64_t> sizes_;
  std::uint64_t stored_bytes_ = 0;
  BackendStats stats_{};
};

}  // namespace

RemoteMemoryPool::RemoteMemoryPool(std::size_t nodes, DeviceModel transfer,
                                   std::uint64_t capacity_bytes)
    : transfer_(transfer), capacity_bytes_(capacity_bytes) {
  partitions_.reserve(nodes == 0 ? 1 : nodes);
  for (std::size_t i = 0; i < (nodes == 0 ? 1 : nodes); ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

std::uint32_t RemoteMemoryPool::partition_of(std::uint32_t owner,
                                             ObjectKey key) const {
  const auto n = static_cast<std::uint32_t>(partitions_.size());
  if (n == 1) return 0;
  // Spread an owner's blobs over the n-1 peers, never its own partition.
  std::uint64_t z = key * 0x9E3779B97F4A7C15ull + owner;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  const auto slot = static_cast<std::uint32_t>(z % (n - 1));
  return slot >= owner ? slot + 1 : slot;
}

std::unique_ptr<StorageBackend> RemoteMemoryPool::backend_for(
    std::uint32_t local) {
  return std::make_unique<RemoteMemoryBackend>(*this, local);
}

std::uint64_t RemoteMemoryPool::stored_on(std::uint32_t node) const {
  const auto& p = *partitions_.at(node);
  std::lock_guard lock(p.mutex);
  return p.bytes;
}

util::Status RemoteMemoryPool::pool_store(std::uint32_t owner, ObjectKey key,
                                          std::span<const std::byte> bytes) {
  std::this_thread::sleep_for(transfer_.cost(bytes.size()));
  auto& part = *partitions_[partition_of(owner, key)];
  std::lock_guard lock(part.mutex);
  if (capacity_bytes_ != 0) {
    auto it = part.blobs.find(key);
    const std::uint64_t replaced =
        it != part.blobs.end() ? it->second.size() : 0;
    if (part.bytes - replaced + bytes.size() > capacity_bytes_) {
      return {util::StatusCode::kUnavailable, "remote memory partition full"};
    }
  }
  auto& slot = part.blobs[key];
  part.bytes -= slot.size();
  slot.assign(bytes.begin(), bytes.end());
  part.bytes += slot.size();
  return util::Status::ok();
}

util::Result<std::vector<std::byte>> RemoteMemoryPool::pool_load(
    std::uint32_t owner, ObjectKey key) {
  auto& part = *partitions_[partition_of(owner, key)];
  std::vector<std::byte> out;
  {
    std::lock_guard lock(part.mutex);
    auto it = part.blobs.find(key);
    if (it == part.blobs.end()) {
      return util::Status(util::StatusCode::kNotFound, "no such remote blob");
    }
    out = it->second;
  }
  std::this_thread::sleep_for(transfer_.cost(out.size()));
  return out;
}

util::Status RemoteMemoryPool::pool_erase(std::uint32_t owner, ObjectKey key) {
  auto& part = *partitions_[partition_of(owner, key)];
  std::lock_guard lock(part.mutex);
  auto it = part.blobs.find(key);
  if (it == part.blobs.end()) {
    return {util::StatusCode::kNotFound, "no such remote blob"};
  }
  part.bytes -= it->second.size();
  part.blobs.erase(it);
  return util::Status::ok();
}

}  // namespace mrts::storage
