#include "storage/degraded_store.hpp"

namespace mrts::storage {

std::uint64_t DegradedStore::charge(std::uint64_t* bucket) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t op = op_index_++;
  std::uint64_t cost = plan_.base_op_us;
  for (const auto& w : plan_.windows) {
    if (op >= w.begin_op && op < w.end_op) {
      cost = plan_.base_op_us * std::max<std::uint32_t>(w.inflation, 1);
      ++degraded_ops_;
      break;
    }
  }
  *bucket += cost;
  return cost;
}

util::Status DegradedStore::store(ObjectKey key,
                                  std::span<const std::byte> bytes) {
  charge(&virtual_store_us_);
  return inner_->store(key, bytes);
}

util::Status DegradedStore::store(ObjectKey key,
                                  std::vector<std::byte>&& bytes) {
  charge(&virtual_store_us_);
  return inner_->store(key, std::move(bytes));
}

util::Result<std::vector<std::byte>> DegradedStore::load(ObjectKey key) {
  charge(&virtual_load_us_);
  return inner_->load(key);
}

BackendStats DegradedStore::stats() const {
  BackendStats s = inner_->stats();
  std::lock_guard<std::mutex> lock(mutex_);
  s.virtual_store_latency_us += virtual_store_us_;
  s.virtual_load_latency_us += virtual_load_us_;
  return s;
}

std::uint64_t DegradedStore::degraded_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return degraded_ops_;
}

}  // namespace mrts::storage
