#include "core/cluster.hpp"

#include <atomic>
#include <thread>

#include "storage/file_store.hpp"
#include "storage/latency_store.hpp"
#include "storage/mem_store.hpp"
#include "util/log.hpp"

namespace mrts::core {
namespace {

std::unique_ptr<storage::StorageBackend> make_spill_backend(
    const ClusterOptions& options, NodeId node,
    storage::RemoteMemoryPool* remote_pool) {
  std::unique_ptr<storage::StorageBackend> base;
  switch (options.spill) {
    case SpillMedium::kFile:
      base = std::make_unique<storage::FileStore>(storage::make_temp_spill_dir(
          options.spill_tag + "-n" + std::to_string(node)));
      break;
    case SpillMedium::kMemory:
      base = std::make_unique<storage::MemStore>();
      break;
    case SpillMedium::kRemoteMemory:
      base = remote_pool->backend_for(node);
      break;
  }
  const bool modeled = options.disk_model.access_latency.count() > 0 ||
                       options.disk_model.bandwidth_bytes_per_sec > 0.0;
  if (modeled) {
    return std::make_unique<storage::LatencyStore>(std::move(base),
                                                   options.disk_model);
  }
  return base;
}

}  // namespace

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  fabric_ = std::make_unique<net::Fabric>(options_.nodes, options_.link);
  if (options_.spill == SpillMedium::kRemoteMemory) {
    remote_pool_ = std::make_unique<storage::RemoteMemoryPool>(
        options_.nodes, options_.remote_memory_model,
        options_.remote_memory_capacity_bytes);
  }
  runtimes_.reserve(options_.nodes);
  for (std::size_t i = 0; i < options_.nodes; ++i) {
    const auto id = static_cast<NodeId>(i);
    runtimes_.push_back(std::make_unique<Runtime>(
        id, fabric_->endpoint(id), registry_,
        make_spill_backend(options_, id, remote_pool_.get()),
        options_.runtime));
  }
}

Cluster::~Cluster() = default;

std::uint64_t Cluster::global_activity() const {
  std::uint64_t total = fabric_->send_epoch();
  for (const auto& rt : runtimes_) total += rt->activity_epoch();
  return total;
}

bool Cluster::all_idle() const {
  for (const auto& rt : runtimes_) {
    if (!rt->is_idle()) return false;
  }
  return true;
}

RunReport Cluster::run() {
  registry_.seal();

  struct Snapshot {
    double comp, comm, disk;
  };
  std::vector<Snapshot> before(runtimes_.size());
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    const auto& c = runtimes_[i]->counters();
    before[i] = {c.comp_time.seconds(), c.comm_time.seconds(),
                 c.disk_time.seconds()};
  }
  const net::FabricStats fabric_before = fabric_->stats();

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(runtimes_.size());
  for (auto& rt : runtimes_) {
    threads.emplace_back([&stop, runtime = rt.get()] {
      while (!stop.load(std::memory_order_acquire)) {
        if (!runtime->progress_once()) {
          // Idle: yield the (possibly single) CPU to busy nodes.
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    });
  }

  util::WallTimer timer;
  bool timed_out = false;
  std::uint64_t prev_activity = 0;
  bool prev_quiet = false;
  util::WallTimer balance_timer;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    if (timer.seconds() > static_cast<double>(options_.max_run_time.count())) {
      timed_out = true;
      break;
    }
    const bool quiet_now = all_idle() && fabric_->all_delivered();
    const std::uint64_t activity_now = global_activity();
    if (quiet_now && prev_quiet && activity_now == prev_activity) {
      break;  // two consecutive quiet scans with no work created in between
    }
    prev_quiet = quiet_now;
    prev_activity = activity_now;

    // Dynamic load balancing: sample queued work, advise the most loaded
    // node to shed queued objects to the least loaded one.
    if (options_.balance.enabled &&
        balance_timer.elapsed() >= options_.balance.interval) {
      balance_timer.reset();
      std::size_t hi = 0, lo = 0;
      std::uint64_t hi_load = 0,
                    lo_load = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t i = 0; i < runtimes_.size(); ++i) {
        const std::uint64_t load = runtimes_[i]->queued_messages();
        if (load > hi_load) {
          hi_load = load;
          hi = i;
        }
        if (load < lo_load) {
          lo_load = load;
          lo = i;
        }
      }
      if (hi != lo &&
          hi_load > options_.balance.imbalance_factor *
                            static_cast<double>(lo_load) +
                        static_cast<double>(options_.balance.slack_messages)) {
        runtimes_[hi]->advise_shed(options_.balance.objects_per_advice,
                                   static_cast<NodeId>(lo));
      }
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  for (auto& rt : runtimes_) rt->flush_stores();
  const double total = timer.seconds();

  RunReport report;
  report.timed_out = timed_out;
  report.total_seconds = total;
  const auto n = static_cast<double>(runtimes_.size());
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    const auto& c = runtimes_[i]->counters();
    report.comp_seconds += (c.comp_time.seconds() - before[i].comp) / n;
    report.comm_seconds += (c.comm_time.seconds() - before[i].comm) / n;
    report.disk_seconds += (c.disk_time.seconds() - before[i].disk) / n;
  }
  const net::FabricStats fabric_after = fabric_->stats();
  report.fabric.messages_sent =
      fabric_after.messages_sent - fabric_before.messages_sent;
  report.fabric.messages_delivered =
      fabric_after.messages_delivered - fabric_before.messages_delivered;
  report.fabric.bytes_sent = fabric_after.bytes_sent - fabric_before.bytes_sent;
  if (timed_out) {
    MRTS_LOG_ERROR("cluster run timed out after {:.1f}s", total);
  }
  return report;
}

}  // namespace mrts::core
