#pragma once

// Ruppert-style guaranteed-quality Delaunay refinement over a conforming
// triangulation:
//   - encroached subsegments (a vertex strictly inside the diametral
//     circle) are split at their midpoint, first;
//   - poor triangles (radius-edge ratio above the bound derived from the
//     minimum-angle goal, or larger than the sizing field allows) get their
//     circumcenter inserted — unless the circumcenter would encroach a
//     subsegment, in which case that subsegment is split instead;
//   - refinement proceeds until no inside triangle is poor and no
//     subsegment is encroached.
//
// Distributed meshing support: the triangulation's split log records every
// subsegment split so subdomain owners can mirror boundary splits onto
// their neighbours (the PCDM protocol), and `RefineLimits::max_new_vertices`
// lets a caller refine in bounded slices (the NUPDR leaf budget).

#include <deque>
#include <functional>
#include <optional>

#include "mesh/triangulation.hpp"

namespace mrts::mesh {

/// Target element size as a function of position; values <= 0 or an empty
/// function mean "no size constraint".
using SizeField = std::function<double(const Point2&)>;

/// Uniform sizing: h everywhere.
SizeField uniform_size(double h);

/// Graded sizing: h_near within `r0` of `focus`, growing linearly with
/// distance to h_far at `r1` and beyond. The classic "fine near a feature"
/// field used by the non-uniform experiments.
SizeField graded_size(Point2 focus, double h_near, double h_far, double r0,
                      double r1);

struct RefineOptions {
  /// Minimum-angle goal in degrees. Termination is guaranteed below
  /// ~20.7 degrees; the default stays under that bound.
  double min_angle_deg = 20.0;
  SizeField size_field;  // optional
};

struct RefineLimits {
  /// Stop after this many successful vertex insertions (0 = unlimited).
  std::size_t max_new_vertices = 0;
  /// Hard safety cap on total vertices; exceeding it throws.
  std::size_t vertex_cap = 50'000'000;
};

struct RefineResult {
  std::size_t vertices_inserted = 0;
  std::size_t segment_splits = 0;
  /// False when max_new_vertices stopped refinement before the mesh was
  /// fully conforming to the quality/size goals.
  bool complete = true;
};

class DelaunayRefiner {
 public:
  DelaunayRefiner(Triangulation& tri, RefineOptions options);

  /// Runs refinement to completion (or to the limits).
  RefineResult refine(const RefineLimits& limits = {});

  /// True if the triangle violates the quality or size criteria.
  [[nodiscard]] bool is_poor(const TriRec& rec) const;

  /// Re-scans the whole triangulation and enqueues existing poor triangles
  /// and encroached segments. Called by the constructor; call again after
  /// external mutations (e.g. mirrored boundary splits).
  void rescan();

 private:
  [[nodiscard]] bool seg_encroached(TriId t, int edge) const;
  void enqueue_created();
  /// Processes one encroached segment; returns vertices added (0 or 1).
  std::size_t process_segment_queue_entry();
  /// Processes one poor triangle; returns vertices added.
  std::size_t process_triangle_queue_entry();

  Triangulation& tri_;
  RefineOptions options_;
  double ratio_bound2_;  // squared radius-edge ratio bound

  // Queues hold (triangle, edge) and triangle handles; entries are
  // re-validated when popped (triangles die as cavities are carved).
  std::deque<SubSegment> seg_queue_;
  std::deque<TriId> tri_queue_;
  std::size_t splits_ = 0;
};

/// Convenience: conforming triangulation of `pslg` refined to `options`.
Triangulation refine_pslg(const Pslg& pslg, const RefineOptions& options);

}  // namespace mrts::mesh
