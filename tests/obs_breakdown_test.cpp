// Cross-check of the two time-accounting paths: the NodeCounters breakdown
// (RunReport) and the span-derived breakdown built from TraceRecorder busy
// aggregates. Instrumented sites use ChargedSpan, which feeds both sinks
// from one pair of clock reads, so the percentages must agree to well within
// the 2-point acceptance window.

#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "obs/trace.hpp"

namespace mrts::core {
namespace {

class Blob : public MobileObject {
 public:
  std::uint64_t value = 0;
  std::vector<std::uint64_t> data;

  void serialize(util::ByteWriter& out) const override {
    out.write(value);
    out.write_vector(data);
  }
  void deserialize(util::ByteReader& in) override {
    value = in.read<std::uint64_t>();
    data = in.read_vector<std::uint64_t>();
  }
  std::size_t footprint_bytes() const override {
    return sizeof(Blob) + data.size() * sizeof(std::uint64_t);
  }
};

std::vector<obs::Cat> breakdown_cats() {
  return {obs::Cat::kComp, obs::Cat::kComm, obs::Cat::kDisk};
}

std::vector<BusyTimes> span_busy(const obs::TraceRecorder& tr,
                                 std::size_t nodes) {
  std::vector<BusyTimes> out(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    out[n].comp_seconds = tr.busy_seconds(n, obs::Cat::kComp);
    out[n].comm_seconds = tr.busy_seconds(n, obs::Cat::kComm);
    out[n].disk_seconds = tr.busy_seconds(n, obs::Cat::kDisk);
  }
  return out;
}

TEST(ObsBreakdownTest, SpanBreakdownMatchesNodeCountersWithinTwoPoints) {
  if (!obs::TraceRecorder::compiled_in()) {
    GTEST_SKIP() << "tracing compiled out (MRTS_TRACE=OFF)";
  }
  auto& tr = obs::TraceRecorder::global();
  tr.disable();
  tr.reset();
  tr.enable({.ring_capacity = 1u << 14});

  constexpr std::size_t kNodes = 2;
  ClusterOptions options;
  options.nodes = kNodes;
  options.runtime.ooc.memory_budget_bytes = 1u << 20;
  options.spill = SpillMedium::kMemory;
  options.max_run_time = std::chrono::seconds(120);
  Cluster cluster(options);
  const TypeId type = cluster.registry().register_type<Blob>("blob");
  const HandlerId h_add = cluster.registry().register_handler(
      type, [](Runtime&, MobileObject& obj, MobilePtr, NodeId,
               util::ByteReader& in) {
        static_cast<Blob&>(obj).value += in.read<std::uint64_t>();
      });

  // ~80 KB objects well past node 0's 1 MB budget so the run exercises all
  // three charged categories: handler compute, remote sends, and swap I/O.
  std::vector<MobilePtr> ptrs;
  for (int i = 0; i < 32; ++i) {
    auto [p, blob] = cluster.node(0).create<Blob>(type);
    blob->data.assign(10000, static_cast<std::uint64_t>(i));
    cluster.node(0).refresh_footprint(p);
    ptrs.push_back(p);
  }
  for (int round = 0; round < 4; ++round) {
    for (MobilePtr p : ptrs) {
      util::ByteWriter w;
      w.write<std::uint64_t>(1);
      cluster.node(1).send(p, h_add, w.take());
    }
  }

  const auto before = span_busy(tr, kNodes);
  const auto report = cluster.run();
  auto after = span_busy(tr, kNodes);
  tr.disable();

  ASSERT_FALSE(report.timed_out);
  ASSERT_GT(report.total_seconds, 0.0);
  EXPECT_GT(cluster.node(0).counters().objects_spilled.load(), 0u);

  for (std::size_t n = 0; n < kNodes; ++n) {
    after[n].comp_seconds -= before[n].comp_seconds;
    after[n].comm_seconds -= before[n].comm_seconds;
    after[n].disk_seconds -= before[n].disk_seconds;
  }
  const RunBreakdown span = make_breakdown(report.total_seconds, after);

  // The run did real handler work, and the recorder saw it.
  EXPECT_GT(span.comp_seconds, 0.0);
  std::uint64_t spans = 0;
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (const obs::Cat cat : breakdown_cats()) {
      spans += tr.spans_closed(n, cat);
    }
  }
  EXPECT_GT(spans, 0u);

  EXPECT_NEAR(span.comp_pct(), report.comp_pct(), 2.0);
  EXPECT_NEAR(span.comm_pct(), report.comm_pct(), 2.0);
  EXPECT_NEAR(span.disk_pct(), report.disk_pct(), 2.0);
  EXPECT_NEAR(span.overlap_pct(), report.overlap_pct(), 2.0);
}

}  // namespace
}  // namespace mrts::core
