#pragma once

// Segment-log record framing, shared by the LogStore engine, its reopen
// recovery scan, and the crash-point tests. A segment is a flat append-only
// byte sequence of framed records:
//
//   [u32 magic][u32 sealed_len][ sealed body: payload..CRC32 trailer ]
//
// where the sealed body reuses storage/sealed_blob framing over
// (key u64, generation u64, kind u8, payload_len u64, payload bytes), so a
// torn append, a truncation, or a bit flip anywhere in a record is detected
// by the same CRC discipline the spill path already trusts. A sequential
// scan recovers every intact record up to the first damaged one and stops
// there — the crash-consistency contract the recovery tests pin.
//
// Generations are monotone across one LogStore's lifetime and are the ONLY
// ordering recovery relies on: a record applies iff its generation exceeds
// the key's current one. Compaction may therefore rewrite a live record or
// a still-needed tombstone into any later segment without breaking replay.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "storage/backend.hpp"
#include "util/status.hpp"

namespace mrts::storage {

/// Leading magic word of every framed record ("SEGL", little-endian).
inline constexpr std::uint32_t kSegmentRecordMagic = 0x4C474553u;
/// Framing prelude: magic word + sealed-body length.
inline constexpr std::size_t kSegmentRecordHeader = 8;
/// Largest sealed body a scanner accepts; a corrupted length field past
/// this is damage, not a record.
inline constexpr std::uint64_t kMaxSegmentRecordBytes = 1ull << 32;

enum class RecordKind : std::uint8_t { kPut = 0, kTombstone = 1 };

struct SegmentRecord {
  ObjectKey key = 0;
  std::uint64_t generation = 0;
  RecordKind kind = RecordKind::kPut;
  std::vector<std::byte> payload;  // empty for tombstones
};

/// Placement of one framed record inside its segment.
struct RecordExtent {
  std::uint64_t offset = 0;  // byte offset of the magic word
  std::uint64_t length = 0;  // framed length: header + sealed body
};

/// Frames one record at the end of `segment`; returns its extent.
RecordExtent append_record(std::vector<std::byte>& segment, ObjectKey key,
                           std::uint64_t generation, RecordKind kind,
                           std::span<const std::byte> payload);

/// Decodes the record framed at `offset`. kCorruption on bad magic, an
/// implausible or truncated length, a failed seal, or a malformed body.
[[nodiscard]] util::Result<SegmentRecord> read_record_at(
    std::span<const std::byte> segment, std::uint64_t offset);

struct SegmentScan {
  std::uint64_t records = 0;      // intact records visited
  std::uint64_t valid_bytes = 0;  // prefix length covered by those records
  bool damaged = false;           // stopped before the end of the buffer
};

/// Sequentially scans `segment`, invoking fn(extent, record) for each
/// intact record; stops at the first damaged or truncated one.
SegmentScan scan_segment(
    std::span<const std::byte> segment,
    const std::function<void(const RecordExtent&, SegmentRecord&&)>& fn);

/// "<id as 16 hex digits>.seg" — lexicographic order == numeric order.
[[nodiscard]] std::string segment_file_name(std::uint64_t id);
[[nodiscard]] std::optional<std::uint64_t> parse_segment_file_name(
    std::string_view name);

}  // namespace mrts::storage
