#pragma once

// Minimal leveled logger. Off by default so test and benchmark output stays
// clean; enable with Log::set_level or the MRTS_LOG environment variable
// (trace|debug|info|warn|error).

#include <atomic>
#include <string_view>

#include "util/format.hpp"

namespace mrts::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Log {
 public:
  static void set_level(LogLevel level);
  /// Reads MRTS_LOG from the environment; defaults to kOff.
  static LogLevel level();

  static void write(LogLevel level, std::string_view msg);

  template <typename... Args>
  static void log(LogLevel lvl, std::string_view fmt, const Args&... args) {
    if (lvl >= level()) {
      write(lvl, util::format(fmt, args...));
    }
  }
};

#define MRTS_LOG_TRACE(...) \
  ::mrts::util::Log::log(::mrts::util::LogLevel::kTrace, __VA_ARGS__)
#define MRTS_LOG_DEBUG(...) \
  ::mrts::util::Log::log(::mrts::util::LogLevel::kDebug, __VA_ARGS__)
#define MRTS_LOG_INFO(...) \
  ::mrts::util::Log::log(::mrts::util::LogLevel::kInfo, __VA_ARGS__)
#define MRTS_LOG_WARN(...) \
  ::mrts::util::Log::log(::mrts::util::LogLevel::kWarn, __VA_ARGS__)
#define MRTS_LOG_ERROR(...) \
  ::mrts::util::Log::log(::mrts::util::LogLevel::kError, __VA_ARGS__)

}  // namespace mrts::util
