#pragma once

// Mesh export for inspection and debugging: SVG (browser-viewable, with
// per-subdomain coloring for decomposed meshes) and OFF (Geomview /
// MeshLab). Only inside triangles are written.

#include <filesystem>
#include <vector>

#include "mesh/triangulation.hpp"
#include "util/status.hpp"

namespace mrts::mesh {

struct SvgOptions {
  double width_px = 1000.0;
  /// Stroke width relative to the domain diagonal.
  double stroke_fraction = 4e-4;
  /// Fill triangles (per-fragment hue) or draw wireframe only.
  bool fill = true;
};

/// Writes one triangulation.
util::Status write_svg(const Triangulation& tri,
                       const std::filesystem::path& path,
                       const SvgOptions& options = {});

/// Writes several mesh fragments (e.g. one per subdomain), each tinted with
/// its own hue so the decomposition is visible.
util::Status write_svg(const std::vector<CompactMesh>& fragments,
                       const std::filesystem::path& path,
                       const SvgOptions& options = {});

/// OFF format (vertices + triangles) of the inside mesh.
util::Status write_off(const Triangulation& tri,
                       const std::filesystem::path& path);

}  // namespace mrts::mesh
