#include "storage/log_store.hpp"

#include <algorithm>
#include <fstream>

#include "obs/metrics.hpp"

namespace mrts::storage {
namespace fs = std::filesystem;
namespace {

util::Result<std::vector<std::byte>> read_file_range(const fs::path& path,
                                                     std::uint64_t offset,
                                                     std::uint64_t length) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status(util::StatusCode::kIoError,
                        "cannot open " + path.string());
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::vector<std::byte> buf(length);
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(length));
  if (!in) {
    return util::Status(util::StatusCode::kCorruption,
                        "short segment read from " + path.string());
  }
  return buf;
}

}  // namespace

LogStore::LogStore(LogStoreOptions options)
    : options_(std::move(options)),
      m_group_commits_(
          &obs::MetricsRegistry::global().counter("logstore.group_commits")),
      m_segments_sealed_(
          &obs::MetricsRegistry::global().counter("logstore.segments_sealed")),
      m_compactions_(
          &obs::MetricsRegistry::global().counter("logstore.compactions")),
      m_records_dropped_(
          &obs::MetricsRegistry::global().counter("logstore.records_dropped")) {
  // A directory-less store can only live in memory.
  if (options_.dir.empty()) options_.in_memory = true;
  open_id_ = 0;
  next_id_ = 1;
  if (!options_.in_memory) {
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    if (options_.recover_on_open) recover_locked();
  }
  open_new_segment_locked();
}

LogStore::~LogStore() {
  std::lock_guard lock(mutex_);
  (void)commit_locked();  // clean shutdown lands the buffered tail
  if (options_.in_memory || options_.retain_on_close) return;
  std::error_code ec;
  for (const auto& [id, seg] : segments_) fs::remove(path_of(id), ec);
}

fs::path LogStore::path_of(std::uint64_t id) const {
  return options_.dir / segment_file_name(id);
}

void LogStore::open_new_segment_locked() {
  open_id_ = next_id_++;
  segments_.emplace(open_id_, Segment{});
}

util::Status LogStore::commit_locked() {
  if (pending_.empty()) return util::Status::ok();
  Segment& seg = segments_.at(open_id_);
  if (options_.in_memory) {
    seg.mem.insert(seg.mem.end(), pending_.begin(), pending_.end());
  } else {
    std::ofstream out(path_of(open_id_),
                      std::ios::binary | std::ios::app);
    if (out) {
      out.write(reinterpret_cast<const char*>(pending_.data()),
                static_cast<std::streamsize>(pending_.size()));
      out.flush();
    }
    if (!out) {
      // Keep the buffer: the records stay loadable from memory and the next
      // commit retries the whole append.
      return {util::StatusCode::kIoError,
              "segment append failed: " + path_of(open_id_).string()};
    }
  }
  seg.committed_bytes += pending_.size();
  pending_.clear();
  pending_records_ = 0;
  ++stats_.device_write_ops;
  ++stats_.group_commits;
  m_group_commits_->inc();
  return util::Status::ok();
}

void LogStore::seal_locked() {
  if (!commit_locked().is_ok()) return;  // stay open; the next commit retries
  segments_.at(open_id_).sealed = true;
  ++stats_.segments_sealed;
  m_segments_sealed_->inc();
  open_new_segment_locked();
}

std::pair<std::uint64_t, RecordExtent> LogStore::raw_append_locked(
    ObjectKey key, std::uint64_t generation, RecordKind kind,
    std::span<const std::byte> payload) {
  const std::uint64_t sid = open_id_;
  Segment& seg = segments_.at(sid);
  RecordExtent extent = append_record(pending_, key, generation, kind, payload);
  extent.offset = seg.committed_bytes + extent.offset;
  seg.valid_bytes += extent.length;
  if (++pending_records_ == 1) pending_since_tick_ = last_tick_;
  if (seg.valid_bytes >= options_.segment_target_bytes) {
    seal_locked();
  } else if (pending_.size() >= options_.group_commit_bytes ||
             pending_records_ >= options_.group_commit_records) {
    (void)commit_locked();
  }
  return {sid, extent};
}

void LogStore::retire_put_locked(const IndexEntry& e) {
  Segment& seg = segments_.at(e.segment);
  seg.live_bytes -= e.extent.length;
  --seg.live_records;
}

void LogStore::retire_tombstone_locked(const Tombstone& t) {
  segments_.at(t.segment).tomb_bytes -= t.extent.length;
}

util::Status LogStore::store(ObjectKey key, std::span<const std::byte> bytes) {
  std::lock_guard lock(mutex_);
  const std::uint64_t gen = next_gen_++;
  if (auto it = index_.find(key); it != index_.end()) {
    retire_put_locked(it->second);
    stored_payload_bytes_ -= it->second.payload_bytes;
  } else if (auto t = tombstones_.find(key); t != tombstones_.end()) {
    // A fresher put masks the tombstone everywhere; it is garbage now.
    retire_tombstone_locked(t->second);
    tombstones_.erase(t);
  }
  const auto [sid, extent] =
      raw_append_locked(key, gen, RecordKind::kPut, bytes);
  index_[key] = IndexEntry{sid, extent, bytes.size(), gen};
  Segment& seg = segments_.at(sid);
  seg.live_bytes += extent.length;
  ++seg.live_records;
  stored_payload_bytes_ += bytes.size();
  stats_.bytes_written += bytes.size();
  ++stats_.store_ops;
  return util::Status::ok();
}

util::Result<std::vector<std::byte>> LogStore::load(ObjectKey key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return util::Status(util::StatusCode::kNotFound, "no such object");
  }
  const IndexEntry& e = it->second;
  const Segment& seg = segments_.at(e.segment);
  std::vector<std::byte> framed;
  if (e.segment == open_id_ && e.extent.offset >= seg.committed_bytes) {
    // Still in the group-commit buffer: a memory hit, no device op.
    const auto rel = static_cast<std::size_t>(e.extent.offset -
                                              seg.committed_bytes);
    framed.assign(pending_.begin() + rel,
                  pending_.begin() + rel + e.extent.length);
  } else if (options_.in_memory) {
    framed.assign(seg.mem.begin() + static_cast<std::size_t>(e.extent.offset),
                  seg.mem.begin() +
                      static_cast<std::size_t>(e.extent.offset +
                                               e.extent.length));
    ++stats_.device_read_ops;
  } else {
    auto read = read_file_range(path_of(e.segment), e.extent.offset,
                                e.extent.length);
    ++stats_.device_read_ops;
    if (!read.is_ok()) return read.status();
    framed = std::move(read).value();
  }
  auto rec = read_record_at(framed, 0);
  if (!rec.is_ok()) return rec.status();
  SegmentRecord record = std::move(rec).value();
  if (record.key != key || record.generation != e.generation ||
      record.kind != RecordKind::kPut) {
    return util::Status(util::StatusCode::kCorruption,
                        "segment record identity mismatch");
  }
  stats_.bytes_read += record.payload.size();
  ++stats_.load_ops;
  return std::move(record.payload);
}

util::Status LogStore::erase(ObjectKey key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return {util::StatusCode::kNotFound, "no such object"};
  }
  retire_put_locked(it->second);
  stored_payload_bytes_ -= it->second.payload_bytes;
  index_.erase(it);
  const std::uint64_t gen = next_gen_++;
  if (auto t = tombstones_.find(key); t != tombstones_.end()) {
    retire_tombstone_locked(t->second);
    tombstones_.erase(t);
  }
  const auto [sid, extent] =
      raw_append_locked(key, gen, RecordKind::kTombstone, {});
  tombstones_[key] = Tombstone{sid, extent, gen};
  segments_.at(sid).tomb_bytes += extent.length;
  ++stats_.erase_ops;
  return util::Status::ok();
}

bool LogStore::contains(ObjectKey key) const {
  std::lock_guard lock(mutex_);
  return index_.contains(key);
}

std::size_t LogStore::count() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

std::uint64_t LogStore::stored_bytes() const {
  std::lock_guard lock(mutex_);
  return stored_payload_bytes_;
}

BackendStats LogStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t LogStore::segment_count() const {
  std::lock_guard lock(mutex_);
  return segments_.size();
}

std::size_t LogStore::pending_records() const {
  std::lock_guard lock(mutex_);
  return pending_records_;
}

void LogStore::tick(std::uint64_t virtual_now) {
  std::lock_guard lock(mutex_);
  last_tick_ = virtual_now;
  if (!pending_.empty() &&
      virtual_now >= pending_since_tick_ + options_.flush_interval_ticks) {
    (void)commit_locked();
  }
  compact_locked(options_.compactions_per_tick,
                 options_.compact_garbage_ratio);
}

util::Status LogStore::flush() {
  std::lock_guard lock(mutex_);
  return commit_locked();
}

std::size_t LogStore::compact(std::size_t max_segments,
                              double min_garbage_ratio) {
  std::lock_guard lock(mutex_);
  return compact_locked(max_segments, min_garbage_ratio);
}

std::size_t LogStore::compact_locked(std::size_t max_segments,
                                     double min_garbage_ratio) {
  std::size_t done = 0;
  while (done < max_segments) {
    std::uint64_t best = 0;
    double best_ratio = -1.0;
    for (const auto& [id, seg] : segments_) {
      if (!seg.sealed) continue;
      const std::uint64_t kept = seg.live_bytes + seg.tomb_bytes;
      if (seg.committed_bytes == 0 && kept == 0) {
        // Fully damaged / empty recovered segment: plain drop.
        best = id;
        best_ratio = 1.0;
        break;
      }
      if (seg.committed_bytes == 0) continue;
      const double ratio =
          static_cast<double>(seg.committed_bytes - kept) /
          static_cast<double>(seg.committed_bytes);
      if (ratio >= min_garbage_ratio && ratio > best_ratio) {
        best = id;
        best_ratio = ratio;
      }
    }
    if (best_ratio < 0.0) break;
    if (!compact_segment_locked(best)) break;
    ++done;
  }
  return done;
}

bool LogStore::compact_segment_locked(std::uint64_t id) {
  auto node = segments_.extract(id);
  if (node.empty()) return false;
  Segment& seg = node.mapped();
  std::vector<std::byte> contents;
  if (seg.committed_bytes > 0) {
    auto read = read_committed_locked(id, seg);
    // One segment-scan read is the physical cost of compacting it.
    ++stats_.device_read_ops;
    if (!read.is_ok()) {
      segments_.insert(std::move(node));
      return false;
    }
    contents = std::move(read).value();
  }
  scan_segment(contents, [&](const RecordExtent& extent, SegmentRecord&& rec) {
    if (rec.kind == RecordKind::kPut) {
      const auto it = index_.find(rec.key);
      const bool live = it != index_.end() && it->second.segment == id &&
                        it->second.extent.offset == extent.offset;
      if (!live) {
        ++stats_.records_dropped;
        m_records_dropped_->inc();
        return;
      }
      const auto [sid, moved] = raw_append_locked(
          rec.key, rec.generation, RecordKind::kPut, rec.payload);
      index_[rec.key] =
          IndexEntry{sid, moved, rec.payload.size(), rec.generation};
      Segment& dst = segments_.at(sid);
      dst.live_bytes += moved.length;
      ++dst.live_records;
      stats_.compacted_bytes += moved.length;
    } else {
      const auto t = tombstones_.find(rec.key);
      const bool kept = t != tombstones_.end() && t->second.segment == id &&
                        t->second.extent.offset == extent.offset;
      if (!kept) {
        ++stats_.records_dropped;
        m_records_dropped_->inc();
        return;
      }
      // Still masking an older put in some other segment: must survive.
      const auto [sid, moved] =
          raw_append_locked(rec.key, rec.generation, RecordKind::kTombstone,
                            {});
      tombstones_[rec.key] = Tombstone{sid, moved, rec.generation};
      segments_.at(sid).tomb_bytes += moved.length;
      stats_.compacted_bytes += moved.length;
    }
  });
  // Land the rewrites before the source segment disappears (write-ahead
  // discipline: a crash in between must never lose the only copy).
  (void)commit_locked();
  if (!options_.in_memory) {
    std::error_code ec;
    fs::remove(path_of(id), ec);
  }
  ++stats_.compactions;
  m_compactions_->inc();
  return true;
}

util::Result<std::vector<std::byte>> LogStore::read_committed_locked(
    std::uint64_t id, const Segment& seg) {
  if (options_.in_memory) return seg.mem;
  return read_file_range(path_of(id), 0, seg.committed_bytes);
}

void LogStore::recover_locked() {
  std::map<std::uint64_t, fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const auto id = parse_segment_file_name(entry.path().filename().string());
    if (id.has_value()) files.emplace(*id, entry.path());
  }
  for (const auto& [id, path] : files) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) continue;
    const auto total = static_cast<std::size_t>(in.tellg());
    std::vector<std::byte> bytes(total);
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(total));
    if (!in) continue;
    const SegmentScan scan = scan_segment(
        bytes, [&](const RecordExtent& extent, SegmentRecord&& rec) {
          // Generation order is the only ordering replay relies on, so a
          // compacted record applies correctly wherever it was rewritten.
          std::uint64_t current = 0;
          if (const auto it = index_.find(rec.key); it != index_.end()) {
            current = it->second.generation;
          } else if (const auto t = tombstones_.find(rec.key);
                     t != tombstones_.end()) {
            current = t->second.generation;
          }
          if (rec.generation <= current) return;
          if (rec.kind == RecordKind::kPut) {
            tombstones_.erase(rec.key);
            index_[rec.key] = IndexEntry{id, extent, rec.payload.size(),
                                         rec.generation};
          } else {
            index_.erase(rec.key);
            tombstones_[rec.key] = Tombstone{id, extent, rec.generation};
          }
        });
    Segment seg;
    seg.committed_bytes = scan.valid_bytes;
    seg.valid_bytes = scan.valid_bytes;
    seg.sealed = true;  // recovered segments never take new appends
    segments_.emplace(id, std::move(seg));
    ++recovery_.segments;
    recovery_.records += scan.records;
    if (scan.damaged) ++recovery_.damaged_segments;
    next_id_ = std::max(next_id_, id + 1);
  }
  for (const auto& [key, e] : index_) {
    Segment& seg = segments_.at(e.segment);
    seg.live_bytes += e.extent.length;
    ++seg.live_records;
    stored_payload_bytes_ += e.payload_bytes;
    next_gen_ = std::max(next_gen_, e.generation + 1);
  }
  for (const auto& [key, t] : tombstones_) {
    segments_.at(t.segment).tomb_bytes += t.extent.length;
    next_gen_ = std::max(next_gen_, t.generation + 1);
  }
}

}  // namespace mrts::storage
