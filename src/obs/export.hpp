#pragma once

// Observability layer, part 3: exporters.
//
// - chrome_trace_json / write_chrome_trace: Chrome Trace Event Format
//   (load the file in chrome://tracing or https://ui.perfetto.dev). Each
//   track (node id) becomes a "process", each recording thread a "thread";
//   wall timestamps convert ns → µs, virtual timestamps map one driver step
//   to one µs so deterministic replays lay out readably.
// - metrics_csv / write_metrics_csv: one row per instrument
//   (name,kind,value,sum,p50,p99).
// - text_summary: human-readable per-run digest (per-track busy time by
//   category, ring statistics, metric values).
//
// All of these read the recorder via dump(), so they inherit its
// quiescent-only contract. They compile and return empty-but-valid output
// when MRTS_TRACE_ENABLED=0.

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace mrts::obs {

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Renders thread dumps as a Chrome Trace Event Format document.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceRecorder::ThreadDump>& dumps, TraceClock clock);

/// Convenience: dumps `rec` (default: the global recorder) and renders it.
[[nodiscard]] std::string chrome_trace_json(
    const TraceRecorder& rec = TraceRecorder::global());

/// Writes chrome_trace_json(rec) to `path`.
[[nodiscard]] util::Status write_chrome_trace(
    const std::string& path, const TraceRecorder& rec = TraceRecorder::global());

/// Renders a metrics snapshot as CSV (header row + one row per instrument).
[[nodiscard]] std::string metrics_csv(const MetricsSnapshot& snapshot);

/// Writes metrics_csv(snapshot) to `path`.
[[nodiscard]] util::Status write_metrics_csv(const std::string& path,
                                             const MetricsSnapshot& snapshot);

/// Per-run text digest: busy seconds by (track, category), span counts,
/// ring drop statistics, and every metric value.
[[nodiscard]] std::string text_summary(
    const TraceRecorder& rec, const MetricsSnapshot& snapshot,
    std::size_t tracks);

}  // namespace mrts::obs
