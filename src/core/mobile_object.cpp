#include "core/mobile_object.hpp"

#include <cassert>
#include <stdexcept>

namespace mrts::core {

TypeId ObjectTypeRegistry::register_type(std::string name,
                                         ObjectFactory factory) {
  if (sealed_) {
    throw std::logic_error("ObjectTypeRegistry: register_type after seal()");
  }
  types_.push_back(Type{std::move(name), std::move(factory), {}});
  return static_cast<TypeId>(types_.size() - 1);
}

HandlerId ObjectTypeRegistry::register_handler(TypeId type,
                                               MessageHandler handler) {
  if (sealed_) {
    throw std::logic_error("ObjectTypeRegistry: register_handler after seal()");
  }
  auto& t = types_.at(type);
  t.handlers.push_back(std::move(handler));
  return static_cast<HandlerId>(t.handlers.size() - 1);
}

std::unique_ptr<MobileObject> ObjectTypeRegistry::create(TypeId type) const {
  return types_.at(type).factory();
}

const MessageHandler& ObjectTypeRegistry::handler(TypeId type,
                                                  HandlerId h) const {
  return types_.at(type).handlers.at(h);
}

const std::string& ObjectTypeRegistry::type_name(TypeId type) const {
  return types_.at(type).name;
}

std::size_t ObjectTypeRegistry::handler_count(TypeId type) const {
  return types_.at(type).handlers.size();
}

}  // namespace mrts::core
