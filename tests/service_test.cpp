// MeshingService unit and integration tests (ctest label "service"):
// weighted max-min fair-share math, FairShareAdmission decisions, the shed
// counter, budget repartitioning across admit/complete, and end-to-end
// open-loop runs over a real cluster.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "chaos/invariants.hpp"
#include "obs/metrics.hpp"
#include "service/admission.hpp"
#include "service/fair_share.hpp"
#include "service/meshing_service.hpp"

namespace mrts::service {
namespace {

// --------------------------------------------------------------------------
// weighted_max_min_shares

TEST(FairShare, EqualWeightsSplitEvenlyAmongSaturatedTenants) {
  const auto s = weighted_max_min_shares(900, {1000, 1000, 1000}, {});
  EXPECT_EQ(s, (std::vector<std::size_t>{300, 300, 300}));
}

TEST(FairShare, SmallDemandIsSatisfiedAndLeftoverGoesToTheHungry) {
  // Tenant 0 wants only 100 of its 300 even split; the other two share the
  // remaining 800 at 400 each.
  const auto s = weighted_max_min_shares(900, {100, 1000, 1000}, {});
  EXPECT_EQ(s, (std::vector<std::size_t>{100, 400, 400}));
}

TEST(FairShare, WeightsSkewTheSplit) {
  const auto s =
      weighted_max_min_shares(900, {1000, 1000, 1000}, {2.0, 1.0, 1.0});
  EXPECT_EQ(s[0], 450u);
  EXPECT_EQ(s[1], 225u);
  EXPECT_EQ(s[2], 225u);
}

TEST(FairShare, ShareNeverExceedsDemandAndSumNeverExceedsCapacity) {
  const std::vector<std::size_t> demand{7, 13, 0, 101, 64};
  const auto s = weighted_max_min_shares(150, demand, {1.0, 3.0, 2.0});
  std::size_t total = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_LE(s[i], demand[i]) << "tenant " << i;
    total += s[i];
  }
  EXPECT_LE(total, 150u);
  // Demand exceeds capacity, so the capacity must be fully handed out.
  EXPECT_EQ(total, 150u);
}

TEST(FairShare, UndersubscribedDemandIsFullySatisfied) {
  const std::vector<std::size_t> demand{10, 20, 30};
  const auto s = weighted_max_min_shares(1000, demand, {});
  EXPECT_EQ(s, demand);
}

TEST(FairShare, DeterministicAcrossCalls) {
  const std::vector<std::size_t> demand{333, 333, 333};
  const auto a = weighted_max_min_shares(1000, demand, {});
  const auto b = weighted_max_min_shares(1000, demand, {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0] + a[1] + a[2], 999u);  // capped by total demand
}

TEST(FairShare, EmptyTenantsYieldEmptyShares) {
  EXPECT_TRUE(weighted_max_min_shares(1000, {}, {}).empty());
}

// --------------------------------------------------------------------------
// FairShareAdmission

AdmissionState two_node_state() {
  AdmissionState s;
  s.capacity_bytes = 200;
  s.node_headroom_bytes = {100, 100};
  s.tenant_admitted_bytes = {0, 0};
  s.tenant_weights = {1.0, 1.0};
  s.tenant_queue_depth = 0;
  s.max_queue_per_tenant = 4;
  return s;
}

TEST(Admission, AdmitsAJobThatFitsEverywhere) {
  FairShareAdmission a;
  const auto d = a.decide({0, 2, 120, false}, two_node_state());
  EXPECT_EQ(d.action, AdmissionAction::kAdmit);
}

TEST(Admission, QueuesWhenPlacementLacksHeadroom) {
  FairShareAdmission a;
  AdmissionState s = two_node_state();
  s.node_headroom_bytes = {100, 10};  // second node cannot take a 60B slice
  const auto d = a.decide({0, 2, 120, false}, s);
  EXPECT_EQ(d.action, AdmissionAction::kQueue);
}

TEST(Admission, QueuesWhenFairShareIsExhausted) {
  FairShareAdmission a;
  AdmissionState s = two_node_state();
  // Tenant 0 already holds its entire half of the 200B capacity; tenant 1
  // is absent, but shares are computed against demand, so asking for 120
  // more puts tenant 0 far past any fair split once tenant 1's zero demand
  // frees nothing.
  s.tenant_admitted_bytes = {100, 100};
  s.node_headroom_bytes = {90, 90};
  const auto d = a.decide({0, 1, 80, false}, s);
  EXPECT_EQ(d.action, AdmissionAction::kQueue);
}

TEST(Admission, ShedsInfeasibleJobsImmediately) {
  FairShareAdmission a;
  // Wider than the cluster: no queue could ever drain it.
  EXPECT_EQ(a.decide({0, 3, 50, false}, two_node_state()).action,
            AdmissionAction::kShed);
  // Working set larger than the entire cluster capacity.
  EXPECT_EQ(a.decide({0, 1, 500, false}, two_node_state()).action,
            AdmissionAction::kShed);
}

TEST(Admission, ShedsWhenTheTenantQueueIsFull) {
  FairShareAdmission a;
  AdmissionState s = two_node_state();
  s.node_headroom_bytes = {10, 10};  // cannot admit
  s.tenant_queue_depth = 4;          // == max_queue_per_tenant
  EXPECT_EQ(a.decide({0, 1, 50, false}, s).action, AdmissionAction::kShed);
  s.max_queue_per_tenant = 0;  // 0 = unbounded: queue instead
  EXPECT_EQ(a.decide({0, 1, 50, false}, s).action, AdmissionAction::kQueue);
}

// --------------------------------------------------------------------------
// MeshingService over a real cluster

core::ClusterOptions small_cluster(std::size_t nodes = 2,
                                   std::size_t budget = 256u << 10) {
  core::ClusterOptions o;
  o.nodes = nodes;
  o.runtime.ooc.memory_budget_bytes = budget;
  o.spill = core::SpillMedium::kMemory;
  return o;
}

jobsim::ServiceJob job(std::uint64_t id, std::uint32_t tenant, int width,
                       std::size_t ws, std::uint32_t phases,
                       jobsim::JobClass cls = jobsim::JobClass::kUpdr,
                       std::uint64_t arrival = 0) {
  jobsim::ServiceJob j;
  j.id = id;
  j.tenant = tenant;
  j.job_class = cls;
  j.arrival_tick = arrival;
  j.width = width;
  j.working_set_bytes = ws;
  j.phases = phases;
  j.seed = 0xC0FFEEull * (id + 1);
  return j;
}

TEST(Service, RunsAMixedBatchToCompletionWithExactPhaseAccounting) {
  core::Cluster cluster(small_cluster());
  ServiceOptions so;
  so.tenants = 2;
  MeshingService svc(cluster, so);

  std::vector<jobsim::ServiceJob> jobs;
  jobs.push_back(job(1, 0, 2, 32u << 10, 3, jobsim::JobClass::kUpdr));
  jobs.push_back(job(2, 1, 2, 32u << 10, 4, jobsim::JobClass::kNupdr, 1));
  jobs.push_back(job(3, 0, 1, 16u << 10, 2, jobsim::JobClass::kPcdm, 2));
  svc.run_open_loop(jobs);

  EXPECT_FALSE(svc.stalled());
  EXPECT_TRUE(svc.drained());
  EXPECT_EQ(svc.submitted_count(), 3u);
  EXPECT_EQ(svc.completed_count(), 3u);
  EXPECT_EQ(svc.shed_count(), 0u);
  EXPECT_EQ(svc.expected_phase_hits(), svc.executed_phase_hits());
  EXPECT_GT(svc.expected_phase_hits(), 0u);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_NE(svc.job_digest(id), 0u) << "job " << id;
  }
  // Drained: every committed-bytes ledger must have returned to zero.
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    EXPECT_EQ(svc.node_committed_bytes(static_cast<net::NodeId>(n)), 0u);
  }
  chaos::InvariantReport report;
  chaos::check_no_starvation(svc.tenant_windows(), report);
  chaos::check_tenant_budgets(svc.tenant_windows(), true, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Service, ShedsWhenTheTenantQueueOverflowsAndCountsIt) {
  core::Cluster cluster(small_cluster(1, 64u << 10));
  ServiceOptions so;
  so.tenants = 1;
  so.max_queue_per_tenant = 2;
  so.preempt_enabled = false;
  MeshingService svc(cluster, so);
  const auto sheds_before =
      obs::MetricsRegistry::global().counter("service.sheds").value();

  // One running job fills the committable capacity; everything else queues
  // until the 2-deep queue is full, then sheds.
  const std::size_t ws = 40u << 10;  // > half of 0.75 * 64K
  for (std::uint64_t id = 1; id <= 5; ++id) {
    svc.submit(job(id, 0, 1, ws, 8));
  }
  EXPECT_EQ(svc.running_jobs(), 1u);
  EXPECT_EQ(svc.queued_jobs(), 2u);
  EXPECT_EQ(svc.shed_count(), 2u);
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("service.sheds").value(),
      sheds_before + 2);
  while (svc.tick()) {
  }
  EXPECT_TRUE(svc.drained());
  EXPECT_EQ(svc.completed_count(), 3u);
  const auto windows = svc.tenant_windows();
  EXPECT_EQ(windows[0].shed, 2u);
  EXPECT_EQ(windows[0].completed, 3u);
}

TEST(Service, InfeasibleJobsAreShedNotWedged) {
  core::Cluster cluster(small_cluster(2, 64u << 10));
  ServiceOptions so;
  so.tenants = 1;
  MeshingService svc(cluster, so);
  // Working set beyond the whole cluster's committable capacity: shed on
  // submit, so it can never wedge the FIFO head.
  svc.submit(job(1, 0, 2, 4u << 20, 2));
  EXPECT_EQ(svc.shed_count(), 1u);
  EXPECT_TRUE(svc.drained());
}

TEST(Service, RepartitionsNodeBudgetsWithCommittedBytes) {
  core::ClusterOptions co = small_cluster(2, 256u << 10);
  core::Cluster cluster(co);
  ServiceOptions so;
  so.tenants = 1;
  so.budget_headroom = 1.25;
  so.min_node_budget_bytes = 16u << 10;
  MeshingService svc(cluster, so);

  const std::size_t physical = 256u << 10;
  const std::size_t ws = 64u << 10;  // 32K per node across width 2
  svc.submit(job(1, 0, 2, ws, 4));
  ASSERT_EQ(svc.running_jobs(), 1u);
  for (std::size_t n = 0; n < 2; ++n) {
    const auto node = static_cast<net::NodeId>(n);
    EXPECT_EQ(svc.node_committed_bytes(node), ws / 2);
    const std::size_t working =
        cluster.node(node).memory_budget_bytes();
    // committed x headroom, clamped to [min, physical].
    EXPECT_EQ(working, static_cast<std::size_t>(1.25 * (ws / 2)));
    EXPECT_LE(working, physical);
  }
  while (svc.tick()) {
  }
  // Drained: budgets collapse back to the floor, never to zero.
  for (std::size_t n = 0; n < 2; ++n) {
    EXPECT_EQ(cluster.node(static_cast<net::NodeId>(n)).memory_budget_bytes(),
              16u << 10);
  }
}

TEST(Service, QueuedJobsRecordPositiveAdmissionLatency) {
  core::Cluster cluster(small_cluster(1, 64u << 10));
  ServiceOptions so;
  so.tenants = 1;
  so.preempt_enabled = false;
  MeshingService svc(cluster, so);
  const std::size_t ws = 40u << 10;
  svc.submit(job(1, 0, 1, ws, 3));  // admitted at once, latency 0
  svc.submit(job(2, 0, 1, ws, 3));  // must wait for job 1 to finish
  while (svc.tick()) {
  }
  ASSERT_EQ(svc.admission_latencies().size(), 2u);
  EXPECT_EQ(svc.admission_latencies()[0], 0u);
  EXPECT_GT(svc.admission_latencies()[1], 0u);
  EXPECT_EQ(svc.completed_count(), 2u);
}

TEST(Service, WeightedTenantsBothFinishUnderContention) {
  core::Cluster cluster(small_cluster(2, 128u << 10));
  ServiceOptions so;
  so.tenants = 2;
  so.tenant_weights = {3.0, 1.0};
  MeshingService svc(cluster, so);

  std::vector<jobsim::ServiceJob> jobs;
  std::uint64_t id = 1;
  for (int k = 0; k < 4; ++k) {
    jobs.push_back(job(id, 0, 2, 48u << 10, 3, jobsim::JobClass::kUpdr,
                       static_cast<std::uint64_t>(k)));
    ++id;
    jobs.push_back(job(id, 1, 2, 48u << 10, 3, jobsim::JobClass::kPcdm,
                       static_cast<std::uint64_t>(k)));
    ++id;
  }
  svc.run_open_loop(jobs);
  EXPECT_FALSE(svc.stalled());
  EXPECT_EQ(svc.completed_count(), 8u);

  chaos::InvariantReport report;
  const auto windows = svc.tenant_windows();
  chaos::check_no_starvation(windows, report);
  chaos::check_tenant_budgets(windows, true, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(windows[0].phases_executed, 0u);
  EXPECT_GT(windows[1].phases_executed, 0u);
}

}  // namespace
}  // namespace mrts::service
