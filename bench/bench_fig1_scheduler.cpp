// Figure 1: queue wait time on a small shared cluster as a function of the
// number of nodes requested, plus the paper's §I motivating turnaround
// comparison (wide in-core job vs narrow out-of-core job).

#include "bench_common.hpp"
#include "jobsim/jobsim.hpp"

using namespace mrts;
using namespace mrts::bench;

int main() {
  BenchReport report(
      "fig1_scheduler",
      "Figure 1 — job queue wait vs requested width (128-node cluster, "
      "FCFS + EASY backfill, 8-week synthetic trace)",
      "requests for <16 nodes start within a couple of minutes; 32-node "
      "requests wait about half an hour; requests over 100 nodes wait hours");

  jobsim::TraceConfig config;
  config.duration_s = 56 * 24 * 3600.0;  // 8 weeks: smooth per-width medians
  const auto jobs = jobsim::make_synthetic_trace(config);
  const auto schedule = jobsim::schedule_easy_backfill(config.cluster_nodes, jobs);

  Table t({"nodes requested", "jobs", "median wait", "p90 wait", "p99 wait",
           "mean wait"});
  const std::vector<int> buckets{2, 4, 8, 16, 32, 64, 128};
  auto fmt_min = [](double s) { return util::format("{:.1f} min", s / 60.0); };
  for (const auto& b :
       jobsim::wait_statistics(schedule, buckets)) {
    t.row(b.width, b.wait_s.count(), fmt_min(b.median_s()),
          fmt_min(b.quantile_s(0.9)), fmt_min(b.quantile_s(0.99)),
          fmt_min(b.wait_s.mean()));
  }
  report.add("queue_wait_vs_width", std::move(t));

  // The open-loop generator shared with bench_service: the class mix and
  // offered memory load the MeshingService admits against.
  jobsim::OpenLoopConfig ol;
  const auto service_jobs = jobsim::make_open_loop_jobs(ol);
  Table mix({"class", "jobs", "mean width", "mean working set KiB",
             "mean phases"});
  for (jobsim::JobClass c : {jobsim::JobClass::kUpdr, jobsim::JobClass::kNupdr,
                             jobsim::JobClass::kPcdm}) {
    std::size_t n = 0, ws = 0;
    double width = 0.0, phases = 0.0;
    for (const auto& j : service_jobs) {
      if (j.job_class != c) continue;
      ++n;
      ws += j.working_set_bytes;
      width += j.width;
      phases += j.phases;
    }
    const double dn = std::max<double>(1.0, static_cast<double>(n));
    mix.row(jobsim::to_string(c), n, width / dn,
            static_cast<double>(ws) / dn / 1024.0, phases / dn);
  }
  report.add("open_loop_class_mix", std::move(mix));
  const double util_pct =
      100.0 * jobsim::utilization(schedule, config.cluster_nodes);
  std::printf("cluster utilization: %.1f%%\n", util_pct);
  report.set_meta("cluster_utilization_pct", util::format("{:.1f}", util_pct));

  print_header(
      "Paper §I turnaround example — wide in-core vs narrow out-of-core",
      "the OOC job computes ~2.4x slower on half the nodes but starts far "
      "sooner, so its turnaround (wait + run) is shorter on a shared cluster");

  // Measure the compute-time ratio with our PCDM/OPCDM at a fixed problem.
  const auto problem = uniform_problem(60000);
  auto pool = tasking::make_pool(tasking::PoolBackend::kWorkStealing, 8);
  const auto incore = pumg::run_pcdm(problem, {.strips = 8}, *pool);
  pumg::OpcdmOocConfig ooc_config{
      .cluster = ooc_cluster(4, 2048, core::SpillMedium::kFile), .strips = 16};
  const auto ooc = pumg::run_opcdm_ooc(problem, ooc_config);

  const auto stats32 = jobsim::wait_statistics(schedule, {16, 32});
  const double wait16 = stats32[0].median_s();
  const double wait32 = stats32[1].median_s();
  const double slowdown =
      ooc.report.total_seconds / std::max(1e-9, incore.wall_seconds);
  // The paper's job runs 310 s on 32 nodes; scale both variants from it.
  const double run32 = 310.0;
  const double run16 = run32 * slowdown;
  Table c({"variant", "nodes", "queue wait", "run", "turnaround"});
  auto fmt = [](double s) { return util::format("{:.0f} s", s); };
  c.row("in-core (wide)", 32, fmt(wait32), fmt(run32), fmt(wait32 + run32));
  c.row("out-of-core (narrow)", 16, fmt(wait16), fmt(run16),
        fmt(wait16 + run16));
  report.add("turnaround_example", std::move(c));
  std::printf(
      "measured OOC slowdown factor (OPCDM on half the nodes, tight memory): "
      "%.2fx (paper: 731/310 = 2.36x)\n",
      slowdown);
  report.set_meta("ooc_slowdown_factor", util::format("{:.2f}", slowdown));
  return 0;
}
