# Empty dependencies file for mrts_tasking.
# This may be replaced when dependencies are built.
