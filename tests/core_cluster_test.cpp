// Multi-node tests of the MRTS cluster: remote messaging, the lazy-update
// distributed directory, migration, multicast collection, termination
// detection, and out-of-core behaviour under remote traffic.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "core/cluster.hpp"

namespace mrts::core {
namespace {

class Box : public MobileObject {
 public:
  std::uint64_t value = 0;
  std::vector<std::uint64_t> data;

  void serialize(util::ByteWriter& out) const override {
    out.write(value);
    out.write_vector(data);
  }
  void deserialize(util::ByteReader& in) override {
    value = in.read<std::uint64_t>();
    data = in.read_vector<std::uint64_t>();
  }
  std::size_t footprint_bytes() const override {
    return sizeof(Box) + data.size() * sizeof(std::uint64_t);
  }
};

std::vector<std::byte> arg_u64(std::uint64_t v) {
  util::ByteWriter w;
  w.write(v);
  return w.take();
}

std::vector<std::byte> arg_2u64(std::uint64_t a, std::uint64_t b) {
  util::ByteWriter w;
  w.write(a);
  w.write(b);
  return w.take();
}

class ClusterTest : public ::testing::Test {
 protected:
  explicit ClusterTest(std::size_t nodes = 4, std::size_t budget_mb = 64) {
    ClusterOptions options;
    options.nodes = nodes;
    options.runtime.ooc.memory_budget_bytes = budget_mb << 20;
    options.spill = SpillMedium::kMemory;
    options.max_run_time = std::chrono::seconds(120);
    cluster_ = std::make_unique<Cluster>(options);
    type_ = cluster_->registry().register_type<Box>("box");
    h_add_ = cluster_->registry().register_handler(
        type_, [](Runtime&, MobileObject& obj, MobilePtr, NodeId,
                  util::ByteReader& in) {
          static_cast<Box&>(obj).value += in.read<std::uint64_t>();
        });
    // Ping-pong: forward a decrementing counter to the peer given in args.
    h_pingpong_ = cluster_->registry().register_handler(
        type_, [this](Runtime& rt, MobileObject& obj, MobilePtr, NodeId,
                      util::ByteReader& in) {
          const auto ttl = in.read<std::uint64_t>();
          const MobilePtr peer{in.read<std::uint64_t>()};
          auto& box = static_cast<Box&>(obj);
          box.value += 1;
          if (ttl > 0) {
            util::ByteWriter w;
            w.write(ttl - 1);
            w.write(peer.id);  // payload keeps naming the other end
            rt.send(peer, h_pingpong_, w.take());
          }
        });
  }

  Box& box_on(NodeId node, MobilePtr p) {
    auto* obj = cluster_->node(node).peek(p);
    EXPECT_NE(obj, nullptr) << "object not in-core on node " << node;
    return static_cast<Box&>(*obj);
  }

  std::unique_ptr<Cluster> cluster_;
  TypeId type_ = 0;
  HandlerId h_add_ = 0, h_pingpong_ = 0;
};

TEST_F(ClusterTest, RemoteSendReachesHomeNode) {
  auto [ptr, box] = cluster_->node(2).create<Box>(type_);
  cluster_->node(0).send(ptr, h_add_, arg_u64(21));
  cluster_->node(1).send(ptr, h_add_, arg_u64(21));
  auto report = cluster_->run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(box_on(2, ptr).value, 42u);
  EXPECT_GE(cluster_->fabric().stats().messages_sent, 2u);
}

TEST_F(ClusterTest, PingPongAcrossNodesTerminates) {
  auto [a, boxa] = cluster_->node(0).create<Box>(type_);
  auto [b, boxb] = cluster_->node(3).create<Box>(type_);
  util::ByteWriter w;
  w.write<std::uint64_t>(99);  // 100 handler executions in total
  w.write(a.id);               // b's peer is a
  cluster_->node(0).send(b, h_pingpong_, w.take());
  // The payload names a fixed peer, so a's peer must be b: reconstruct by
  // sending the first hop to b with peer=a; the chain alternates correctly
  // because each hop swaps target and peer.
  auto report = cluster_->run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(box_on(0, a).value + box_on(3, b).value, 100u);
}

TEST_F(ClusterTest, MigrationMovesObjectAndQueue) {
  auto [ptr, box] = cluster_->node(0).create<Box>(type_);
  box->data.assign(1000, 17);
  cluster_->node(0).send(ptr, h_add_, arg_u64(1));
  cluster_->node(0).migrate(ptr, 2);
  auto report = cluster_->run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_FALSE(cluster_->node(0).is_local(ptr));
  ASSERT_TRUE(cluster_->node(2).is_local(ptr));
  cluster_->node(2).lock_in_core(ptr);
  (void)cluster_->run();
  EXPECT_EQ(box_on(2, ptr).value, 1u);
  EXPECT_EQ(box_on(2, ptr).data.size(), 1000u);
  EXPECT_EQ(cluster_->node(2).counters().migrations_in.load(), 1u);
}

TEST_F(ClusterTest, LazyDirectoryForwardsAndLearns) {
  auto [ptr, box] = cluster_->node(0).create<Box>(type_);
  cluster_->node(0).migrate(ptr, 1);
  (void)cluster_->run();
  ASSERT_TRUE(cluster_->node(1).is_local(ptr));

  // Node 3 has never heard of the object: its message goes to the home node
  // (0), which forwards to 1; the delivery triggers location updates.
  cluster_->node(3).send(ptr, h_add_, arg_u64(5));
  (void)cluster_->run();
  EXPECT_EQ(box_on(1, ptr).value, 5u);
  EXPECT_GE(cluster_->node(0).counters().messages_forwarded.load(), 1u);
  const auto updates_after_first =
      cluster_->node(1).counters().location_updates.load();
  EXPECT_GE(updates_after_first, 1u);

  // Second message from node 3 must go directly (no new forwards).
  const auto forwards_before =
      cluster_->node(0).counters().messages_forwarded.load();
  cluster_->node(3).send(ptr, h_add_, arg_u64(5));
  (void)cluster_->run();
  EXPECT_EQ(box_on(1, ptr).value, 10u);
  EXPECT_EQ(cluster_->node(0).counters().messages_forwarded.load(),
            forwards_before);
}

TEST_F(ClusterTest, MulticastCollectsAndDelivers) {
  auto [a, boxa] = cluster_->node(0).create<Box>(type_);
  auto [b, boxb] = cluster_->node(1).create<Box>(type_);
  auto [c, boxc] = cluster_->node(2).create<Box>(type_);
  // Deliver to the first 2 of {a, b, c} once all three are co-resident.
  cluster_->node(0).send_multicast({a, b, c}, 2, h_add_, arg_u64(100));
  auto report = cluster_->run();
  EXPECT_FALSE(report.timed_out);
  // All three collected on node 0 (owner of the first target).
  EXPECT_TRUE(cluster_->node(0).is_local(a));
  EXPECT_TRUE(cluster_->node(0).is_local(b));
  EXPECT_TRUE(cluster_->node(0).is_local(c));
  EXPECT_EQ(box_on(0, a).value, 100u);
  EXPECT_EQ(box_on(0, b).value, 100u);
  EXPECT_EQ(box_on(0, c).value, 0u);  // beyond deliver_count
}

TEST_F(ClusterTest, MulticastFromNonOwnerRoutesToOwner) {
  auto [a, boxa] = cluster_->node(1).create<Box>(type_);
  auto [b, boxb] = cluster_->node(2).create<Box>(type_);
  cluster_->node(3).send_multicast({a, b}, 1, h_add_, arg_u64(7));
  auto report = cluster_->run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_TRUE(cluster_->node(1).is_local(a));
  EXPECT_TRUE(cluster_->node(1).is_local(b));  // collected at a's owner
  EXPECT_EQ(box_on(1, a).value, 7u);
  EXPECT_EQ(box_on(1, b).value, 0u);
}

TEST_F(ClusterTest, TwoPhaseRunsAccumulate) {
  auto [ptr, box] = cluster_->node(0).create<Box>(type_);
  cluster_->node(1).send(ptr, h_add_, arg_u64(1));
  (void)cluster_->run();
  EXPECT_EQ(box_on(0, ptr).value, 1u);
  cluster_->node(1).send(ptr, h_add_, arg_u64(2));
  (void)cluster_->run();
  EXPECT_EQ(box_on(0, ptr).value, 3u);
}

TEST_F(ClusterTest, EmptyRunTerminatesImmediately) {
  auto report = cluster_->run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_LT(report.total_seconds, 5.0);
}

TEST_F(ClusterTest, SumCountersThrowsWhileRunInFlight) {
  // A handler parks on a gate so the cluster is provably mid-run when the
  // main thread probes the counters.
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  const HandlerId h_park = cluster_->registry().register_handler(
      type_, [&entered, &release](Runtime&, MobileObject&, MobilePtr, NodeId,
                                  util::ByteReader&) {
        entered.store(true);
        while (!release.load()) std::this_thread::yield();
      });
  auto [ptr, box] = cluster_->node(0).create<Box>(type_);
  cluster_->node(1).send(ptr, h_park, arg_u64(0));

  std::thread runner([this] { (void)cluster_->run(); });
  while (!entered.load()) std::this_thread::yield();
  EXPECT_THROW(
      (void)cluster_->sum_counters(
          [](const NodeCounters& c) { return c.messages_executed.load(); }),
      std::logic_error);
  release.store(true);
  runner.join();

  // Quiescent again: the same call now succeeds and sees the parked handler.
  const auto executed = cluster_->sum_counters(
      [](const NodeCounters& c) { return c.messages_executed.load(); });
  EXPECT_GE(executed, 1u);
}

class OocClusterTest : public ClusterTest {
 protected:
  OocClusterTest() : ClusterTest(2, /*budget_mb=*/1) {}
};

TEST_F(OocClusterTest, RemoteTrafficDrivesSwapping) {
  // Fill node 0 with ~80 KB objects well past its 1 MB budget, then hammer
  // them with remote messages from node 1.
  std::vector<MobilePtr> ptrs;
  for (int i = 0; i < 32; ++i) {
    auto [p, box] = cluster_->node(0).create<Box>(type_);
    box->data.assign(10000, static_cast<std::uint64_t>(i));
    cluster_->node(0).refresh_footprint(p);
    ptrs.push_back(p);
  }
  for (int round = 0; round < 2; ++round) {
    for (MobilePtr p : ptrs) {
      cluster_->node(1).send(p, h_add_, arg_u64(1));
    }
  }
  auto report = cluster_->run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_GT(cluster_->node(0).counters().objects_spilled.load(), 0u);
  EXPECT_GT(cluster_->node(0).counters().objects_loaded.load(), 0u);
  // While eviction is possible the budget is honoured (small slack for the
  // object being processed).
  EXPECT_LE(cluster_->node(0).in_core_bytes(),
            2 * cluster_->node(0).options().ooc.memory_budget_bytes);
  // Every message must have been applied exactly once despite the churn.
  // Pinning all objects intentionally exceeds the budget; the runtime must
  // honour the locks rather than deadlock.
  for (MobilePtr p : ptrs) {
    cluster_->node(0).lock_in_core(p);
  }
  auto report2 = cluster_->run();
  EXPECT_FALSE(report2.timed_out);
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    ASSERT_TRUE(cluster_->node(0).is_in_core(ptrs[i]));
    EXPECT_EQ(box_on(0, ptrs[i]).value, 2u);
    EXPECT_EQ(box_on(0, ptrs[i]).data[9999], i);
  }
}

TEST_F(OocClusterTest, BreakdownCountersPopulated) {
  std::vector<MobilePtr> ptrs;
  for (int i = 0; i < 16; ++i) {
    auto [p, box] = cluster_->node(0).create<Box>(type_);
    box->data.assign(10000, 1);
    cluster_->node(0).refresh_footprint(p);
    ptrs.push_back(p);
  }
  for (MobilePtr p : ptrs) cluster_->node(1).send(p, h_add_, arg_u64(1));
  auto report = cluster_->run();
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.comp_seconds, 0.0);
  EXPECT_GT(report.comm_seconds, 0.0);
  EXPECT_GE(report.disk_seconds, 0.0);
}

}  // namespace
}  // namespace mrts::core
