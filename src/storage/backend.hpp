#pragma once

// Storage-layer backend interface (paper §II.D "storage layer"). The
// underlying facility is hidden from the application: the runtime sees only
// keyed blobs. Implementations: FileStore (real files on disk), MemStore
// (in-memory, for tests), plus decorators adding modeled device latency and
// injected faults.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace mrts::storage {

/// Globally unique identifier of a stored blob (the mobile object id).
using ObjectKey = std::uint64_t;

/// Byte counters maintained by every backend; used by the benches to report
/// disk traffic.
struct BackendStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t store_ops = 0;
  std::uint64_t load_ops = 0;
  std::uint64_t erase_ops = 0;
};

/// Abstract keyed blob store. Implementations must be thread-safe: the
/// ObjectStore I/O thread and application threads may call concurrently.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Writes (or atomically overwrites) the blob stored under `key`.
  virtual util::Status store(ObjectKey key, std::span<const std::byte> bytes) = 0;

  /// Reads the full blob stored under `key`.
  virtual util::Result<std::vector<std::byte>> load(ObjectKey key) = 0;

  /// Removes the blob; kNotFound if absent.
  virtual util::Status erase(ObjectKey key) = 0;

  virtual bool contains(ObjectKey key) const = 0;

  /// Number of blobs currently stored.
  virtual std::size_t count() const = 0;

  /// Total bytes currently stored.
  virtual std::uint64_t stored_bytes() const = 0;

  virtual BackendStats stats() const = 0;
};

}  // namespace mrts::storage
