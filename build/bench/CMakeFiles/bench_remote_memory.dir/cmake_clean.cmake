file(REMOVE_RECURSE
  "CMakeFiles/bench_remote_memory.dir/bench_remote_memory.cpp.o"
  "CMakeFiles/bench_remote_memory.dir/bench_remote_memory.cpp.o.d"
  "bench_remote_memory"
  "bench_remote_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
